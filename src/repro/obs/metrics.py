"""Process-local metrics registry: counters, gauges, histograms.

The pipeline and its substrates record bounded-cardinality metrics —
segment counts, matrix cache hits/misses, knee-retry counts,
cluster/noise sizes — into a :class:`MetricsRegistry`.  Instruments
follow Prometheus conventions (``*_total`` counter suffix, ``le``
histogram buckets) so :func:`repro.obs.export.prometheus_text` can dump
the registry in the text exposition format without translation.

Like the tracer, the active registry is a :mod:`contextvars` binding:
:func:`get_metrics` inside library code picks up whatever
:func:`use_metrics` scope the caller established.  Unlike the tracer,
the default registry *does* record — metric cardinality is bounded, so
an always-on default costs a few dicts, and module-level consumers such
as :func:`repro.core.matrixcache.cache_counters` keep working with no
setup.

Labels are passed as keyword arguments and stored per sorted label set::

    registry.counter("repro_segments_total").inc(42, segmenter="nemesys")
    registry.gauge("repro_clusters").set(7)
    registry.histogram("repro_stage_seconds").observe(0.12, stage="matrix")
"""

from __future__ import annotations

import contextvars
import re
from contextlib import contextmanager
from typing import Iterator

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Seconds-oriented default histogram buckets (Prometheus defaults).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 60.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    for name in labels:
        if not _LABEL_NAME.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class _Instrument:
    """Shared bookkeeping for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def label_sets(self) -> list[LabelKey]:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count (Prometheus ``counter``)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add *amount* (>= 0) to the labeled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def label_sets(self) -> list[LabelKey]:
        return list(self._values)


class Gauge(_Instrument):
    """Point-in-time value that can go up and down (Prometheus ``gauge``)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def label_sets(self) -> list[LabelKey]:
        return list(self._values)


class Histogram(_Instrument):
    """Cumulative-bucket distribution (Prometheus ``histogram``)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        #: per label set: (per-bound counts, sum, count)
        self._series: dict[LabelKey, dict] = {}

    def _series_for(self, key: LabelKey) -> dict:
        if key not in self._series:
            self._series[key] = {
                "buckets": [0] * len(self.bounds),
                "sum": 0.0,
                "count": 0,
            }
        return self._series[key]

    def observe(self, value: float, **labels) -> None:
        """Record one observation into every bucket it falls under."""
        series = self._series_for(_label_key(labels))
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                series["buckets"][index] += 1
        series["sum"] += float(value)
        series["count"] += 1

    def snapshot(self, **labels) -> dict:
        """Cumulative bucket counts + sum + count for one label set."""
        series = self._series_for(_label_key(labels))
        return {
            "buckets": list(series["buckets"]),
            "sum": series["sum"],
            "count": series["count"],
        }

    def label_sets(self) -> list[LabelKey]:
        return list(self._series)


class MetricsRegistry:
    """Get-or-create store of instruments, keyed by metric name."""

    def __init__(self):
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, help=help, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the histogram *name* (buckets fixed at creation)."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def instruments(self) -> Iterator[_Instrument]:
        """All registered instruments in name order."""
        for name in sorted(self._instruments):
            yield self._instruments[name]

    def reset(self) -> None:
        """Drop every instrument (test and benchmark isolation)."""
        self._instruments.clear()

    def remove(self, name: str) -> None:
        """Drop one instrument if present (re-created at zero on next use)."""
        self._instruments.pop(name, None)

    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument (the manifest's metrics key)."""
        out: dict[str, dict] = {}
        for instrument in self.instruments():
            series = []
            for key in sorted(instrument.label_sets()):
                labels = dict(key)
                if isinstance(instrument, Histogram):
                    data = instrument.snapshot(**labels)
                    series.append(
                        {
                            "labels": labels,
                            "bounds": list(instrument.bounds),
                            **data,
                        }
                    )
                else:
                    series.append(
                        {"labels": labels, "value": instrument.value(**labels)}
                    )
            out[instrument.name] = {
                "type": instrument.kind,
                "help": instrument.help,
                "series": series,
            }
        return out


#: Default binding: an always-on process-wide registry.
_DEFAULT = MetricsRegistry()
_ACTIVE: contextvars.ContextVar[MetricsRegistry] = contextvars.ContextVar(
    "repro_active_metrics", default=_DEFAULT
)


def get_metrics() -> MetricsRegistry:
    """The registry bound to the current context (default: process-wide)."""
    return _ACTIVE.get()


@contextmanager
def use_metrics(registry: MetricsRegistry):
    """Bind *registry* as the active registry for the enclosed block."""
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)
