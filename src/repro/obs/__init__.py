"""Structured observability: spans, metrics, and run manifests.

Every pipeline stage (segment → matrix → autoconf → dbscan → refine)
reports into this package:

- :mod:`repro.obs.tracer` — nestable spans recording wall clock, CPU
  time, and peak RSS per stage, bound to the current context via
  :func:`use_tracer` / :func:`get_tracer`;
- :mod:`repro.obs.metrics` — a Prometheus-convention registry of
  counters, gauges, and histograms (segment counts, matrix cache
  hits/misses, knee retries, cluster/noise sizes);
- :mod:`repro.obs.export` — the versioned JSON *run manifest* (span
  tree + metrics snapshot + config fingerprint) and the Prometheus
  text dump behind the CLIs' ``--trace-out`` / ``--metrics-out``.

The package depends only on the standard library so any layer of the
codebase can instrument itself without import cycles.
"""

from repro.obs.export import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    config_fingerprint,
    parse_prometheus_text,
    prometheus_text,
    run_manifest,
    validate_manifest,
    write_manifest,
    write_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    use_metrics,
)
from repro.obs.tracer import Span, Tracer, get_tracer, peak_rss_kib, use_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "config_fingerprint",
    "get_metrics",
    "get_tracer",
    "parse_prometheus_text",
    "peak_rss_kib",
    "prometheus_text",
    "run_manifest",
    "use_metrics",
    "use_tracer",
    "validate_manifest",
    "write_manifest",
    "write_prometheus",
]
