"""Nestable tracing spans for the clustering pipeline.

A :class:`Span` records one named unit of work — a pipeline stage, a
segmenter run, a matrix build — with wall-clock seconds, process CPU
seconds, the process peak RSS observed by its end, free-form
attributes, and child spans.  A :class:`Tracer` assembles spans into a
tree via a reentrant context manager::

    tracer = Tracer()
    with tracer.span("pipeline", segments=1234):
        with tracer.span("matrix") as span:
            ...
            span.set(backend="parallel")

Spans always *measure*, even on a disabled tracer, so cheap views like
the pipeline's ``timings`` dict work without any tracer plumbing; a
disabled tracer simply retains nothing (``roots`` stays empty), which
keeps long-lived library processes from accumulating span trees.  The
active tracer is a :mod:`contextvars` binding — :func:`get_tracer`
inside the pipeline picks up whatever :func:`use_tracer` scope the
caller (CLI, :mod:`repro.api`, a test) established, with a process-wide
disabled tracer as the default.

Exception safety: a span whose body raises is marked ``status="error"``
with the exception summary recorded, then closed normally; the
exception propagates unchanged.
"""

from __future__ import annotations

import contextvars
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

try:  # pragma: no cover - absent only on non-unix platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None


def peak_rss_kib() -> int | None:
    """Process peak resident set size in KiB, or None if unavailable."""
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on Linux
        peak //= 1024
    return int(peak)


@dataclass
class Span:
    """One named, timed unit of work inside a span tree."""

    name: str
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    #: Unix epoch seconds when the span started (for cross-run ordering).
    started_unix: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    #: Process-wide peak RSS in KiB observed by span end (monotonic).
    peak_rss_kib: int | None = None
    status: str = "ok"
    error: str | None = None
    _wall_anchor: float = field(default=0.0, repr=False)
    _cpu_anchor: float = field(default=0.0, repr=False)

    def set(self, **attributes) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def begin(self) -> None:
        """Anchor the span's clocks (called by :meth:`Tracer.span`)."""
        self.started_unix = time.time()
        self._wall_anchor = time.perf_counter()
        self._cpu_anchor = time.process_time()

    def end(self) -> None:
        """Close the span's clocks (called by :meth:`Tracer.span`)."""
        self.wall_seconds = time.perf_counter() - self._wall_anchor
        self.cpu_seconds = time.process_time() - self._cpu_anchor
        self.peak_rss_kib = peak_rss_kib()

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-ready representation (the manifest's span node schema)."""
        return {
            "name": self.name,
            "started_unix": self.started_unix,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "peak_rss_kib": self.peak_rss_kib,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Collects spans into trees; one instance per run (not thread-safe).

    *max_roots* bounds how many root span trees are retained: once
    reached, further root spans still measure but are not kept (counted
    in :attr:`dropped_roots`).  Long-running processes — the
    ``repro-serve`` session service traces every append as its own root
    — set a bound so the tracer cannot grow without limit; ``None``
    (the default) retains everything, which is right for one-shot runs.
    """

    def __init__(self, enabled: bool = True, max_roots: int | None = None):
        if max_roots is not None and max_roots < 1:
            raise ValueError(f"max_roots must be >= 1, got {max_roots}")
        self.enabled = enabled
        self.max_roots = max_roots
        self.roots: list[Span] = []
        self.dropped_roots = 0
        self._stack: list[Span] = []

    def reset(self) -> None:
        """Drop every retained root tree (e.g. after exporting them).

        Spans currently open keep recording into their existing tree,
        which is simply no longer retained; new roots are kept again.
        """
        self.roots = []
        self.dropped_roots = 0

    def _retain_root(self, span: Span) -> None:
        if self.max_roots is not None and len(self.roots) >= self.max_roots:
            self.dropped_roots += 1
            return
        self.roots.append(span)

    @contextmanager
    def span(self, name: str, **attributes):
        """Open a child span of the innermost active span (or a new root)."""
        span = Span(name=name, attributes=dict(attributes))
        if self.enabled:
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self._retain_root(span)
        self._stack.append(span)
        span.begin()
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.end()
            self._stack.pop()

    def record(
        self,
        name: str,
        *,
        wall_seconds: float = 0.0,
        started_unix: float | None = None,
        **attributes,
    ) -> Span:
        """Attach one already-measured, closed span to the active span.

        The threaded matrix scheduler uses this: worker threads run in
        their own :mod:`contextvars` context (so ``get_tracer()`` there
        would miss the caller's binding) and the tracer itself is not
        thread-safe, so workers only *measure* their tiles and the main
        thread records them after each completion.  The span is created
        closed, with the caller-supplied wall clock; CPU seconds and
        peak RSS are process-wide quantities that per-thread tiles
        cannot attribute, so they stay zero/None.
        """
        span = Span(name=name, attributes=dict(attributes))
        span.started_unix = time.time() if started_unix is None else started_unix
        span.wall_seconds = float(wall_seconds)
        if self.enabled:
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self._retain_root(span)
        return span

    def walk(self) -> Iterator[Span]:
        """Depth-first iteration over every retained span."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All retained spans with the given name, in tree order."""
        return [span for span in self.walk() if span.name == name]

    def stage_timings(self) -> dict[str, float]:
        """Wall seconds per span name (summed over repeats), tree order.

        This is the data behind the CLIs' ``--timings`` view.
        """
        timings: dict[str, float] = {}
        for span in self.walk():
            timings[span.name] = timings.get(span.name, 0.0) + span.wall_seconds
        return timings


#: Default binding: measure-only, retain nothing.
_DISABLED = Tracer(enabled=False)
_ACTIVE: contextvars.ContextVar[Tracer] = contextvars.ContextVar(
    "repro_active_tracer", default=_DISABLED
)


def get_tracer() -> Tracer:
    """The tracer bound to the current context (default: disabled)."""
    return _ACTIVE.get()


@contextmanager
def use_tracer(tracer: Tracer):
    """Bind *tracer* as the active tracer for the enclosed block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
