"""Run manifests and Prometheus exposition for tracer + metrics data.

A *run manifest* is the JSON artefact one pipeline invocation leaves
behind: the full span tree, a metrics snapshot, and a fingerprint of
the configuration that produced them.  The schema is versioned and
validated by :func:`validate_manifest`, and the benchmark harness emits
its JSON from the same structure, so perf numbers across PRs stay
comparable.

Manifest layout (``schema`` = ``repro.run-manifest/v1``)::

    {
      "schema": "repro.run-manifest/v1",
      "schema_version": 1,
      "created_unix": 1700000000.0,
      "meta": {...},                      # free-form caller context
      "config": {...} | null,             # JSON image of the config
      "config_fingerprint": "sha256-hex" | null,
      "spans": [<span node>, ...],        # repro.obs.tracer.Span.to_dict
      "metrics": {<name>: {...}, ...}     # MetricsRegistry.snapshot
    }

:func:`prometheus_text` serializes a registry in the Prometheus text
exposition format (``# HELP`` / ``# TYPE`` comments, ``le``-bucketed
histograms); :func:`parse_prometheus_text` is the matching minimal
parser used by tests and by tooling that wants the numbers back
without a Prometheus server.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import re
import time
from pathlib import Path

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import Tracer

MANIFEST_SCHEMA = "repro.run-manifest/v1"
MANIFEST_SCHEMA_VERSION = 1

_SPAN_REQUIRED_KEYS = {
    "name",
    "started_unix",
    "wall_seconds",
    "cpu_seconds",
    "status",
    "attributes",
    "children",
}
_MANIFEST_REQUIRED_KEYS = {
    "schema",
    "schema_version",
    "created_unix",
    "config",
    "config_fingerprint",
    "spans",
    "metrics",
}


def jsonable(value):
    """Best-effort conversion of config-ish objects to JSON-ready data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [jsonable(v) for v in value]
        return sorted(items, key=str) if isinstance(value, (set, frozenset)) else items
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_fingerprint(config) -> str:
    """Stable SHA-256 over the JSON image of a configuration object.

    Two runs share a fingerprint iff their configs are field-for-field
    equal, so manifests from different machines/orderings compare.
    """
    payload = json.dumps(jsonable(config), sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(b"repro-config-v1\0")
    digest.update(payload.encode())
    return digest.hexdigest()


def run_manifest(
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
    config=None,
    meta: dict | None = None,
) -> dict:
    """Assemble the JSON run manifest for one traced run."""
    return {
        "schema": MANIFEST_SCHEMA,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_unix": time.time(),
        "meta": dict(meta or {}),
        "config": jsonable(config) if config is not None else None,
        "config_fingerprint": config_fingerprint(config) if config is not None else None,
        "spans": [span.to_dict() for span in tracer.roots],
        "metrics": metrics.snapshot() if metrics is not None else {},
    }


def _validate_span(node, path: str, errors: list[str]) -> None:
    if not isinstance(node, dict):
        errors.append(f"{path}: span node is not an object")
        return
    missing = _SPAN_REQUIRED_KEYS - node.keys()
    if missing:
        errors.append(f"{path}: missing span keys {sorted(missing)}")
        return
    if not isinstance(node["name"], str) or not node["name"]:
        errors.append(f"{path}: span name must be a non-empty string")
    if node["status"] not in ("ok", "error"):
        errors.append(f"{path}: invalid status {node['status']!r}")
    for key in ("started_unix", "wall_seconds", "cpu_seconds"):
        if not isinstance(node[key], (int, float)):
            errors.append(f"{path}: {key} must be numeric")
    if not isinstance(node["attributes"], dict):
        errors.append(f"{path}: attributes must be an object")
    if not isinstance(node["children"], list):
        errors.append(f"{path}: children must be an array")
        return
    for index, child in enumerate(node["children"]):
        _validate_span(child, f"{path}.children[{index}]", errors)


def validate_manifest(manifest) -> dict:
    """Schema-check a manifest; returns it, or raises ValueError."""
    errors: list[str] = []
    if not isinstance(manifest, dict):
        raise ValueError("manifest is not an object")
    missing = _MANIFEST_REQUIRED_KEYS - manifest.keys()
    if missing:
        errors.append(f"missing manifest keys {sorted(missing)}")
    else:
        if manifest["schema"] != MANIFEST_SCHEMA:
            errors.append(f"unknown schema {manifest['schema']!r}")
        if manifest["schema_version"] != MANIFEST_SCHEMA_VERSION:
            errors.append(f"unknown schema_version {manifest['schema_version']!r}")
        if not isinstance(manifest["spans"], list):
            errors.append("spans must be an array")
        else:
            for index, node in enumerate(manifest["spans"]):
                _validate_span(node, f"spans[{index}]", errors)
        if not isinstance(manifest["metrics"], dict):
            errors.append("metrics must be an object")
    if errors:
        raise ValueError("invalid run manifest: " + "; ".join(errors))
    return manifest


def write_manifest(
    path: str | Path,
    tracer: Tracer,
    metrics: MetricsRegistry | None = None,
    config=None,
    meta: dict | None = None,
) -> Path:
    """Validate and write the run manifest as JSON; returns the path."""
    manifest = validate_manifest(run_manifest(tracer, metrics, config, meta))
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=False) + "\n")
    return path


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Serialize a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for instrument in metrics.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for key in sorted(instrument.label_sets()):
                labels = dict(key)
                series = instrument.snapshot(**labels)
                for bound, count in zip(instrument.bounds, series["buckets"]):
                    lines.append(
                        f"{instrument.name}_bucket"
                        f"{_format_labels(labels, {'le': _format_value(bound)})}"
                        f" {count}"
                    )
                lines.append(
                    f"{instrument.name}_bucket"
                    f"{_format_labels(labels, {'le': '+Inf'})} {series['count']}"
                )
                lines.append(
                    f"{instrument.name}_sum{_format_labels(labels)}"
                    f" {_format_value(series['sum'])}"
                )
                lines.append(
                    f"{instrument.name}_count{_format_labels(labels)}"
                    f" {series['count']}"
                )
        else:
            for key in sorted(instrument.label_sets()):
                labels = dict(key)
                lines.append(
                    f"{instrument.name}{_format_labels(labels)}"
                    f" {_format_value(instrument.value(**labels))}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(path: str | Path, metrics: MetricsRegistry) -> Path:
    """Write the registry as a Prometheus text file; returns the path."""
    path = Path(path)
    path.write_text(prometheus_text(metrics))
    return path


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict[tuple[str, tuple], float]:
    """Parse exposition text into ``{(name, sorted_labels): value}``.

    Strict enough to validate our own output (tests round-trip through
    it); raises ValueError on any malformed sample line.
    """
    samples: dict[tuple[str, tuple], float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"line {line_number}: malformed sample {line!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted(
                (name, value.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\"))
                for name, value in _LABEL_PAIR.findall(labels_text)
            )
        )
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(
                f"line {line_number}: bad sample value {raw_value!r}"
            ) from exc
        samples[(match.group("name"), labels)] = value
    return samples
