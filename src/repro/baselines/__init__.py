"""Baselines the paper compares against (FieldHunter)."""

from repro.baselines.fieldhunter import FieldHunter, FieldHunterResult, TypedField

__all__ = ["FieldHunter", "FieldHunterResult", "TypedField"]
