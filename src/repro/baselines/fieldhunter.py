"""FieldHunter re-implementation (Bermudez et al., Computer
Communications 2016) — the paper's rule-based state-of-the-art baseline.

FieldHunter types *fixed-offset n-gram fields* with a closed set of
heuristics, each binding a field candidate to transport/addressing
context:

- **MSG-Type** — small-cardinality value correlated between a request
  and its response (mutual information),
- **MSG-Len**  — numeric value linearly correlated with message length,
- **Trans-ID** — high-entropy value echoed verbatim in the response,
- **Host-ID**  — value constant per source host, differing across hosts,
- **Session-ID** — value constant per (source, destination) pair,
- **Accumulator** — value monotonically non-decreasing over a flow
  (counters, timestamps).

Because every rule leans on context (addresses, request/response
pairing, flows), FieldHunter is inapplicable to protocols without IP
encapsulation — AWDL and AU in the paper — and on the others it types
only a handful of header bytes.  The evaluation uses the resulting
byte *coverage* (paper Section IV-D: ~3 % on average, vs. 87 % for
clustering).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.coverage import Coverage
from repro.net.trace import Trace, TraceMessage

#: n-gram widths FieldHunter considers at each offset.
NGRAM_WIDTHS = (4, 2, 1)

MSG_TYPE_MAX_CARDINALITY = 12
MSG_TYPE_MIN_MI = 0.7
MSG_LEN_MIN_CORRELATION = 0.95
TRANS_ID_MIN_ECHO = 0.95
TRANS_ID_MIN_ENTROPY = 0.7
HOST_ID_MIN_HOSTS = 5
ACCUMULATOR_MIN_MONOTONE = 0.98


@dataclass(frozen=True)
class TypedField:
    """One inferred fixed-offset field."""

    offset: int
    width: int
    ftype: str
    confidence: float

    @property
    def end(self) -> int:
        return self.offset + self.width


@dataclass
class FieldHunterResult:
    """Typed fields plus coverage accounting for one trace."""

    fields: list[TypedField]
    trace_bytes: int
    typed_bytes: int
    applicable: bool = True

    @property
    def coverage(self) -> Coverage:
        return Coverage(covered_bytes=self.typed_bytes, total_bytes=self.trace_bytes)


def _entropy(counts: Counter) -> float:
    total = sum(counts.values())
    if total <= 1:
        return 0.0
    return -sum((c / total) * math.log2(c / total) for c in counts.values())


def _normalized_mutual_information(pairs: list[tuple[bytes, bytes]]) -> float:
    if len(pairs) < 2:
        return 0.0
    left = Counter(a for a, _ in pairs)
    right = Counter(b for _, b in pairs)
    joint = Counter(pairs)
    h_left = _entropy(left)
    h_right = _entropy(right)
    h_joint = _entropy(joint)
    mi = h_left + h_right - h_joint
    denominator = max(h_left, h_right)
    return mi / denominator if denominator > 0 else 0.0


def _values_at(messages: list[TraceMessage], offset: int, width: int) -> list[bytes]:
    return [
        m.data[offset : offset + width]
        for m in messages
        if len(m.data) >= offset + width
    ]


def _pair_requests_responses(
    trace: Trace,
) -> list[tuple[TraceMessage, TraceMessage]]:
    """Match each request to the next response of the same conversation."""
    pending: dict[tuple, TraceMessage] = {}
    pairs = []
    for message in trace:
        if message.src_ip is None:
            continue
        if message.direction == "request":
            key = (message.src_ip, message.dst_ip, message.src_port, message.dst_port)
            pending[key] = message
        elif message.direction == "response":
            key = (message.dst_ip, message.src_ip, message.dst_port, message.src_port)
            request = pending.pop(key, None)
            if request is not None:
                pairs.append((request, message))
    return pairs


class FieldHunter:
    """Rule-based field type inference over fixed-offset n-grams."""

    def __init__(self, max_offset: int = 64):
        self.max_offset = max_offset

    def analyze(self, trace: Trace) -> FieldHunterResult:
        total_bytes = trace.total_bytes
        messages = list(trace)
        if not messages or all(m.src_ip is None for m in messages):
            # No addressing context: every rule is inapplicable (AWDL, AU).
            return FieldHunterResult(
                fields=[], trace_bytes=total_bytes, typed_bytes=0, applicable=False
            )
        pairs = _pair_requests_responses(trace)
        claimed = np.zeros(self.max_offset, dtype=bool)
        fields: list[TypedField] = []

        def claim(offset: int, width: int, ftype: str, confidence: float) -> None:
            fields.append(
                TypedField(offset=offset, width=width, ftype=ftype, confidence=confidence)
            )
            claimed[offset : offset + width] = True

        min_len = min(len(m.data) for m in messages)
        limit = min(self.max_offset, min_len)
        # Rules in FieldHunter's precedence order; each byte is typed once.
        for rule in (
            self._find_msg_type,
            self._find_msg_len,
            self._find_trans_id,
            self._find_host_id,
            self._find_session_id,
            self._find_accumulator,
        ):
            for offset, width, ftype, confidence in rule(messages, pairs, limit):
                if not claimed[offset : offset + width].any():
                    claim(offset, width, ftype, confidence)

        typed_per_message = sum(
            sum(f.width for f in fields if len(m.data) >= f.end) for m in messages
        )
        return FieldHunterResult(
            fields=sorted(fields, key=lambda f: f.offset),
            trace_bytes=total_bytes,
            typed_bytes=typed_per_message,
        )

    # -- individual rules ----------------------------------------------------

    def _find_msg_type(self, messages, pairs, limit):
        for width in (1, 2):
            for offset in range(0, limit - width + 1):
                values = _values_at(messages, offset, width)
                cardinality = len(set(values))
                if not 1 < cardinality <= MSG_TYPE_MAX_CARDINALITY:
                    continue
                value_pairs = [
                    (req.data[offset : offset + width], resp.data[offset : offset + width])
                    for req, resp in pairs
                    if len(req.data) >= offset + width and len(resp.data) >= offset + width
                ]
                mi = _normalized_mutual_information(value_pairs)
                if mi >= MSG_TYPE_MIN_MI:
                    yield offset, width, "msg-type", mi

    def _find_msg_len(self, messages, pairs, limit):
        lengths = np.array([len(m.data) for m in messages], dtype=float)
        if lengths.std() == 0:
            return
        for width in (2, 4):
            for offset in range(0, limit - width + 1):
                raw = _values_at(messages, offset, width)
                if len(raw) < len(messages):
                    continue
                for order in ("big", "little"):
                    values = np.array(
                        [int.from_bytes(v, order) for v in raw], dtype=float
                    )
                    if values.std() == 0:
                        continue
                    corr = float(np.corrcoef(values, lengths)[0, 1])
                    if corr >= MSG_LEN_MIN_CORRELATION:
                        yield offset, width, "msg-len", corr
                        break

    def _find_trans_id(self, messages, pairs, limit):
        if not pairs:
            return
        for width in (2, 4):
            for offset in range(0, limit - width + 1):
                value_pairs = [
                    (req.data[offset : offset + width], resp.data[offset : offset + width])
                    for req, resp in pairs
                    if len(req.data) >= offset + width and len(resp.data) >= offset + width
                ]
                if len(value_pairs) < 3:
                    continue
                echoed = sum(1 for a, b in value_pairs if a == b) / len(value_pairs)
                if echoed < TRANS_ID_MIN_ECHO:
                    continue
                counts = Counter(a for a, _ in value_pairs)
                max_entropy = math.log2(len(value_pairs))
                if max_entropy <= 0:
                    continue
                if _entropy(counts) / max_entropy >= TRANS_ID_MIN_ENTROPY:
                    yield offset, width, "trans-id", echoed

    def _find_host_id(self, messages, pairs, limit):
        yield from self._find_endpoint_id(
            messages, limit, key=lambda m: m.src_ip, ftype="host-id"
        )

    def _find_session_id(self, messages, pairs, limit):
        yield from self._find_endpoint_id(
            messages,
            limit,
            key=lambda m: (m.src_ip, m.dst_ip),
            ftype="session-id",
        )

    def _find_endpoint_id(self, messages, limit, key, ftype):
        for width in (2, 4):
            for offset in range(0, limit - width + 1):
                per_key: dict = defaultdict(set)
                for m in messages:
                    if len(m.data) >= offset + width and key(m) is not None:
                        per_key[key(m)].add(m.data[offset : offset + width])
                if len(per_key) < HOST_ID_MIN_HOSTS:
                    continue
                consistent = all(len(values) == 1 for values in per_key.values())
                distinct = {next(iter(v)) for v in per_key.values() if len(v) == 1}
                if consistent and len(distinct) >= HOST_ID_MIN_HOSTS:
                    yield offset, width, ftype, 1.0

    def _find_accumulator(self, messages, pairs, limit):
        # Flows: messages grouped by (src, dst), kept in capture order.
        flows: dict = defaultdict(list)
        for m in messages:
            if m.src_ip is not None:
                flows[(m.src_ip, m.dst_ip)].append(m)
        for width in (4, 8):
            for offset in range(0, limit - width + 1):
                steps = 0
                monotone = 0
                distinct: set = set()
                for flow in flows.values():
                    values = [
                        int.from_bytes(m.data[offset : offset + width], "big")
                        for m in flow
                        if len(m.data) >= offset + width
                    ]
                    distinct.update(values)
                    for a, b in zip(values, values[1:]):
                        steps += 1
                        if b >= a:
                            monotone += 1
                if steps < 5 or len(distinct) < 3:
                    continue
                if monotone / steps >= ACCUMULATOR_MIN_MONOTONE:
                    yield offset, width, "accumulator", monotone / steps
