"""Experiment runner: one function per paper table/figure cell.

Every run is deterministic given (protocol, message count, seed), so the
benchmark harness and the CLI regenerate identical numbers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.api import cluster_segments
from repro.core.pipeline import ClusteringConfig
from repro.errors import ComputeError
from repro.eval.truth import label_with_truth
from repro.metrics import clustering_coverage, score_clustering, score_result
from repro.metrics.pairwise import ClusterScore
from repro.msgtypes import cluster_message_types
from repro.net.trace import Trace
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.protocols import get_model
from repro.protocols.base import ProtocolModel
from repro.segmenters import (
    GroundTruthSegmenter,
    Segmenter,
    SegmenterResourceError,
    resolve_segmenter,
)
from repro.statemachine import (
    infer_session_machine,
    infer_state_machine,
    transition_coverage,
    type_symbol,
)
from repro.statemachine.stage import label_map
from repro.net.flows import sessions_from_trace

__all__ = [
    "DEFAULT_SEED",
    "ExperimentCell",
    "HEURISTIC_SEGMENTERS",
    "Table1Row",
    "cluster_segments",
    "expected_min_samples",
    "make_segmenter",
    "prepare_trace",
    "run_cell",
    "run_table1_row",
]

DEFAULT_SEED = 42

HEURISTIC_SEGMENTERS = ("netzob", "nemesys", "csp")

CELLS_METRIC = "repro_eval_cells_total"

_CELLS_HELP = "Evaluation sweep cells, by outcome (ok/failed/resumed)."


def count_cell(status: str) -> None:
    """Increment ``repro_eval_cells_total{status=...}``."""
    get_metrics().counter(CELLS_METRIC, help=_CELLS_HELP).inc(status=status)


def make_segmenter(name: str, model: ProtocolModel) -> Segmenter:
    """Instantiate a segmenter by table name.

    "groundtruth" is special-cased — it wraps the protocol model's
    dissector, which the name-only registry cannot construct; every
    other name resolves through
    :func:`repro.segmenters.resolve_segmenter`.
    """
    name = name.lower()
    if name == "groundtruth":
        return GroundTruthSegmenter(model)
    try:
        return resolve_segmenter(name)
    except ValueError:
        raise KeyError(f"unknown segmenter {name!r}") from None


@dataclass(frozen=True)
class ExperimentCell:
    """One (protocol, size, segmenter[, refinement]) evaluation outcome."""

    protocol: str
    message_count: int
    segmenter: str
    failed: bool = False
    failure_class: str = ""
    failure_reason: str = ""
    score: ClusterScore | None = None
    coverage: float | None = None
    epsilon: float | None = None
    unique_segments: int = 0
    runtime_seconds: float = 0.0
    #: Boundary-refinement pass composed with the segmenter ("none"
    #: keeps legacy cells indistinguishable from pre-grid sweeps).
    refinement: str = "none"
    #: Boundary decisions the refinement pass applied (0 for "none").
    boundaries_moved: int = 0
    #: Message-type stage outcome, when the cell ran with msgtypes.
    msgtype_count: int | None = None
    msgtype_noise: int | None = None
    msgtype_epsilon: float | None = None
    msgtype_precision: float | None = None
    #: State-machine stage outcome, when the cell ran with statemachine.
    sm_states: int | None = None
    sm_transitions: int | None = None
    #: Fraction of held-out sessions the automaton accepts.
    sm_holdout_accept: float | None = None
    #: Fraction of ground-truth-kind transitions the inferred automaton
    #: also walks (None when the model defines no message kinds).
    sm_truth_coverage: float | None = None

    @property
    def summary(self) -> str:
        if self.failed:
            return "fails"
        assert self.score is not None
        parts = (
            f"P={self.score.precision:.2f} R={self.score.recall:.2f} "
            f"F={self.score.fscore:.2f}"
        )
        if self.coverage is not None:
            parts += f" cov={self.coverage:.0%}"
        if self.msgtype_count is not None:
            parts += f" types={self.msgtype_count}"
        if self.sm_states is not None:
            parts += f" states={self.sm_states}"
        return parts


def prepare_trace(protocol: str, message_count: int, seed: int = DEFAULT_SEED) -> tuple[
    ProtocolModel, Trace
]:
    """Generate and preprocess the evaluation trace for one row."""
    model = get_model(protocol)
    trace = model.generate(message_count, seed=seed).preprocess()
    return model, trace


#: Every HOLDOUT_STRIDE-th session is held out of state-machine
#: training and used to measure acceptance (a deterministic 80/20 split
#: spread across the capture).
HOLDOUT_STRIDE = 5


def _statemachine_metrics(
    model: ProtocolModel,
    raw_trace: Trace,
    labeled_trace: Trace,
    types,
    sm_result,
) -> tuple[float | None, float | None]:
    """(held-out acceptance, ground-truth transition coverage).

    Holdout: the automaton is re-inferred from the training sessions
    only and asked to accept the held-out sessions' type sequences.
    Truth coverage: a reference automaton inferred from the model's
    ground-truth message kinds is walked in parallel with the full
    inferred automaton (see
    :func:`repro.statemachine.transition_coverage`); None when the
    model defines no message kinds.
    """
    labels = label_map(labeled_trace, types)
    try:
        kind_of = {m.data: model.message_kind(m.data) for m in labeled_trace}
    except NotImplementedError:
        kind_of = None
    sessions = sessions_from_trace(raw_trace, idle_timeout=sm_result.idle_timeout)
    label_seqs: list[tuple[str, ...]] = []
    kind_seqs: list[tuple[str, ...]] = []
    for session in sessions:
        lbl_seq: list[str] = []
        kind_seq: list[str] = []
        for message in session:
            label = labels.get(message.data)
            if label is None or label < 0:
                continue  # drop noise positions from both views
            lbl_seq.append(type_symbol(label))
            if kind_of is not None:
                kind_seq.append(kind_of[message.data])
        if lbl_seq:
            label_seqs.append(tuple(lbl_seq))
            kind_seqs.append(tuple(kind_seq))
    holdout = label_seqs[HOLDOUT_STRIDE - 1 :: HOLDOUT_STRIDE]
    train = [
        seq
        for index, seq in enumerate(label_seqs)
        if index % HOLDOUT_STRIDE != HOLDOUT_STRIDE - 1
    ]
    accept: float | None = None
    if holdout and train:
        trained = infer_state_machine(train, history=sm_result.history)
        accept = sum(trained.accepts(seq) for seq in holdout) / len(holdout)
    elif label_seqs:
        accept = sum(
            sm_result.machine.accepts(seq) for seq in label_seqs
        ) / len(label_seqs)
    coverage: float | None = None
    if kind_of is not None and kind_seqs:
        truth = infer_state_machine(kind_seqs, history=sm_result.history)
        coverage = transition_coverage(
            truth, sm_result.machine, zip(kind_seqs, label_seqs)
        )
    return accept, coverage


def run_cell(
    protocol: str,
    message_count: int,
    segmenter_name: str,
    seed: int = DEFAULT_SEED,
    config: ClusteringConfig | None = None,
    *,
    refinement: str = "none",
    msgtypes: bool = False,
    statemachine: bool = False,
) -> ExperimentCell:
    """Run segmentation + clustering + scoring for one table cell.

    The whole cell runs inside one ``eval.cell`` span, so eval run
    manifests attribute segmentation/pipeline time to their table cell.
    Any exception raised while evaluating the cell — not just the
    segmenter resource guard — is recorded as a *failed* cell (error
    class + message land in the span and hence the run manifest) so a
    sweep continues past one broken cell instead of aborting.  Unknown
    protocol or segmenter names still raise immediately: those are
    caller errors, not evaluation outcomes.

    *refinement* composes a boundary-refinement pass with the segmenter
    (the scenario-grid axis); with *msgtypes* the cell also runs the
    message-type stage and scores it against the protocol model's
    ground-truth message kinds (None when the model defines none).
    With *statemachine* (implies *msgtypes*) the cell additionally
    infers the per-session state machine and reports its size, held-out
    session acceptance, and transition coverage against an automaton
    built from the model's ground-truth kinds.
    """
    msgtypes = msgtypes or statemachine
    model = get_model(protocol)
    segmenter = make_segmenter(segmenter_name, model)
    if refinement != "none":
        segmenter = resolve_segmenter(segmenter, refinement=refinement, config=config)
    started = time.perf_counter()
    with get_tracer().span(
        "eval.cell",
        protocol=protocol,
        messages=message_count,
        segmenter=segmenter_name,
        refinement=refinement,
    ) as span:
        def failed_cell(error: Exception, failure_class: str) -> ExperimentCell:
            span.set(failed=True, error_class=failure_class, reason=str(error))
            count_cell("failed")
            return ExperimentCell(
                protocol=protocol,
                message_count=message_count,
                segmenter=segmenter_name,
                failed=True,
                failure_class=failure_class,
                failure_reason=str(error),
                runtime_seconds=time.perf_counter() - started,
                refinement=refinement,
            )

        try:
            raw_trace = model.generate(message_count, seed=seed)
            trace = raw_trace.preprocess()
            segments = segmenter.segment(trace)
            boundaries_moved = (
                segmenter.last_refinement.boundaries_moved
                if refinement != "none"
                else 0
            )
            if segmenter_name != "groundtruth":
                segments = label_with_truth(segments, trace, model)
            result = cluster_segments(segments, config)
            score = score_result(result)
            coverage = clustering_coverage(result, trace).ratio
            types = (
                cluster_message_types(
                    segments, len(trace), matrix=result.matrix, trace=trace
                )
                if msgtypes
                else None
            )
            msgtype_precision = None
            if types is not None:
                try:
                    kinds = [model.message_kind(m.data) for m in trace]
                except NotImplementedError:
                    kinds = None
                if kinds is not None:
                    msgtype_precision = score_clustering(
                        [
                            (int(label), kinds[i])
                            for i, label in enumerate(types.labels)
                        ],
                        beta=1.0,
                    ).precision
            sm_result = None
            sm_accept = sm_coverage = None
            if statemachine and types is not None:
                sm_result = infer_session_machine(
                    raw_trace, types, labeled_trace=trace
                )
                sm_accept, sm_coverage = _statemachine_metrics(
                    model, raw_trace, trace, types, sm_result
                )
        except SegmenterResourceError as error:
            return failed_cell(error, "SegmenterResourceError")
        except Exception as error:  # the per-cell exception barrier
            return failed_cell(error, type(error).__name__)
        span.set(
            fscore=round(score.fscore, 4),
            clusters=result.cluster_count,
            epsilon=result.epsilon,
        )
        if refinement != "none":
            span.set(boundaries_moved=boundaries_moved)
        if types is not None:
            span.set(msgtype_count=types.type_count, msgtype_noise=types.noise_count)
        if sm_result is not None:
            span.set(
                sm_states=sm_result.state_count,
                sm_transitions=sm_result.transition_count,
            )
    count_cell("ok")
    return ExperimentCell(
        protocol=protocol,
        message_count=message_count,
        segmenter=segmenter_name,
        score=score,
        coverage=coverage,
        epsilon=result.epsilon,
        unique_segments=len(result.segments),
        runtime_seconds=time.perf_counter() - started,
        refinement=refinement,
        boundaries_moved=boundaries_moved,
        msgtype_count=types.type_count if types is not None else None,
        msgtype_noise=types.noise_count if types is not None else None,
        msgtype_epsilon=float(types.epsilon) if types is not None else None,
        msgtype_precision=msgtype_precision,
        sm_states=sm_result.state_count if sm_result is not None else None,
        sm_transitions=(
            sm_result.transition_count if sm_result is not None else None
        ),
        sm_holdout_accept=sm_accept,
        sm_truth_coverage=sm_coverage,
    )


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I: clustering from ground-truth segments."""

    protocol: str
    message_count: int
    unique_fields: int
    epsilon: float
    score: ClusterScore

    @property
    def summary(self) -> str:
        return (
            f"{self.protocol:6s} {self.message_count:5d} {self.unique_fields:6d} "
            f"{self.epsilon:6.3f} {self.score.precision:5.2f} "
            f"{self.score.recall:5.2f} {self.score.fscore:5.2f}"
        )


def run_table1_row(
    protocol: str,
    message_count: int,
    seed: int = DEFAULT_SEED,
    config: ClusteringConfig | None = None,
) -> Table1Row:
    """One Table I row: cluster ground-truth segments of one trace."""
    cell = run_cell(protocol, message_count, "groundtruth", seed=seed, config=config)
    if cell.failed:
        raise ComputeError(
            f"table1 cell {protocol}/{message_count} failed: "
            f"{cell.failure_class}: {cell.failure_reason}"
        )
    assert cell.score is not None and cell.epsilon is not None
    return Table1Row(
        protocol=protocol,
        message_count=message_count,
        unique_fields=cell.unique_segments,
        epsilon=cell.epsilon,
        score=cell.score,
    )


def expected_min_samples(unique_count: int) -> int:
    """Reference for reports: the paper's ln-n rule."""
    return max(2, round(math.log(unique_count))) if unique_count > 1 else 1
