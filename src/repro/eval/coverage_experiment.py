"""The paper's headline coverage comparison (Section IV-D).

FieldHunter types one or two fields per message (~3 % of bytes on
average in the paper); pseudo-data-type clustering covers most of the
message content (87 % average over Table II in the paper).  This module
computes both sides on our traces: per protocol, FieldHunter coverage
vs. the clustering coverage of each heuristic segmenter (best cell
reported, as the analyst would pick the best-suited segmenter per
protocol — Section IV-C closes with exactly that remaining choice).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.fieldhunter import FieldHunter
from repro.eval.reporting import fmt_pct, render_table
from repro.eval.runner import (
    DEFAULT_SEED,
    HEURISTIC_SEGMENTERS,
    prepare_trace,
    run_cell,
)
from repro.protocols.registry import LARGE_TRACE_ROWS, SMALL_TRACE_ROWS


@dataclass
class CoverageRow:
    protocol: str
    message_count: int
    fieldhunter_coverage: float
    fieldhunter_applicable: bool
    clustering_coverage: float
    best_segmenter: str
    #: coverage of every non-failing segmenter cell for this row
    all_cell_coverages: tuple[float, ...] = ()


@dataclass
class CoverageComparison:
    rows: list[CoverageRow]

    @property
    def fieldhunter_average(self) -> float:
        return sum(r.fieldhunter_coverage for r in self.rows) / len(self.rows)

    @property
    def clustering_average(self) -> float:
        return sum(r.clustering_coverage for r in self.rows) / len(self.rows)

    @property
    def all_cells_average(self) -> float:
        """Average over every non-failing Table-II cell (the paper's 87 %
        headline averages Table II's coverage column)."""
        values = [c for r in self.rows for c in r.all_cell_coverages]
        return sum(values) / len(values) if values else 0.0

    @property
    def improvement_factor(self) -> float:
        fh = self.fieldhunter_average
        return self.clustering_average / fh if fh > 0 else float("inf")

    def render(self) -> str:
        body = [
            [
                row.protocol,
                row.message_count,
                fmt_pct(row.fieldhunter_coverage)
                + ("" if row.fieldhunter_applicable else " (n/a)"),
                fmt_pct(row.clustering_coverage),
                row.best_segmenter,
            ]
            for row in self.rows
        ]
        table = render_table(
            ["proto", "msgs", "FieldHunter", "clustering", "best segmenter"],
            body,
            title="Coverage: FieldHunter baseline vs pseudo-data-type clustering",
        )
        summary = (
            f"\naverage coverage: FieldHunter {self.fieldhunter_average:.1%} "
            f"vs clustering {self.clustering_average:.1%} best-cell / "
            f"{self.all_cells_average:.1%} all-cells "
            f"(x{self.improvement_factor:.1f} improvement; "
            "paper: 3% vs 87%, ~x30)"
        )
        return table + summary


def run_coverage_comparison(
    seed: int = DEFAULT_SEED,
    rows: list[tuple[str, int]] | None = None,
) -> CoverageComparison:
    """Compute the FieldHunter-vs-clustering coverage comparison (E5)."""
    if rows is None:
        rows = LARGE_TRACE_ROWS + [r for r in SMALL_TRACE_ROWS if r[0] == "au"]
    out: list[CoverageRow] = []
    for proto, count in rows:
        model, trace = prepare_trace(proto, count, seed)
        fh = FieldHunter().analyze(trace)
        best_cov = 0.0
        best_seg = "-"
        cell_coverages = []
        for segmenter in HEURISTIC_SEGMENTERS:
            cell = run_cell(proto, count, segmenter, seed=seed)
            if cell.failed or cell.coverage is None or cell.score is None:
                continue
            cell_coverages.append(cell.coverage)
            # Pick the analyst's segmenter by F-score, then report its
            # coverage (mirrors the paper's per-protocol best choice).
            if best_seg == "-" or cell.score.fscore > best_f:
                best_f = cell.score.fscore
                best_cov = cell.coverage
                best_seg = cell.segmenter
        out.append(
            CoverageRow(
                protocol=proto,
                message_count=count,
                fieldhunter_coverage=fh.coverage.ratio,
                fieldhunter_applicable=fh.applicable,
                clustering_coverage=best_cov,
                best_segmenter=best_seg,
                all_cell_coverages=tuple(cell_coverages),
            )
        )
    return CoverageComparison(rows=out)
