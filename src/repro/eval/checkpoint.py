"""Resumable evaluation sweeps: a JSON-lines checkpoint of finished cells.

A full table run is a sweep over (protocol, message count, segmenter)
cells, each costing seconds to minutes; a crash in cell 47 of 60 used to
throw everything away.  :class:`SweepCheckpoint` appends every finished
:class:`~repro.eval.runner.ExperimentCell` — including *failed* ones —
as one JSON line, so an interrupted sweep re-run with ``--resume`` skips
every cell already on disk.

Each line is stamped with a *sweep fingerprint*
(:func:`sweep_fingerprint`, a SHA-256 via
:func:`repro.obs.export.config_fingerprint` over the seed and the
clustering config) — resuming with a different seed or config ignores
stale lines instead of serving wrong numbers.  Loading is deliberately
forgiving: a torn final line from a crash mid-write, or garbage from an
unrelated tool, is skipped rather than fatal.

Line schema (``repro.eval-checkpoint/v1``)::

    {"schema": "repro.eval-checkpoint/v1", "fingerprint": "…",
     "cell": {"protocol": …, "message_count": …, "segmenter": …,
              "failed": …, "failure_class": …, "failure_reason": …,
              "score": {…} | null, "coverage": …, "epsilon": …,
              "unique_segments": …, "runtime_seconds": …}}
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.eval.runner import ExperimentCell
from repro.metrics.pairwise import ClusterScore
from repro.obs.export import config_fingerprint

CHECKPOINT_SCHEMA = "repro.eval-checkpoint/v1"

#: A cell's identity within one sweep (seed/config live in the
#: fingerprint).  Cells without a refinement pass keep the historical
#: 3-tuple so pre-grid checkpoints stay resumable; grid cells with a
#: refinement extend the key with it.
CellKey = tuple


def cell_key(cell: ExperimentCell) -> CellKey:
    refinement = getattr(cell, "refinement", "none")
    if refinement in ("", "none"):
        return (cell.protocol, cell.message_count, cell.segmenter)
    return (cell.protocol, cell.message_count, cell.segmenter, refinement)


def sweep_fingerprint(seed: int, config=None, kind: str | None = None) -> str:
    """Fingerprint identifying one sweep's inputs (seed + config).

    *kind* namespaces sweeps whose cells carry extra per-cell state —
    the scenario grid passes ``kind="grid"`` so its msgtype-bearing
    cells never satisfy a plain table sweep (or vice versa); omitting
    it preserves the historical fingerprint of existing checkpoints.
    """
    payload = {"schema": CHECKPOINT_SCHEMA, "seed": seed, "config": config}
    if kind is not None:
        payload["kind"] = kind
    return config_fingerprint(payload)


def cell_to_record(cell: ExperimentCell) -> dict:
    """JSON image of one cell (dataclasses, score included)."""
    record = dataclasses.asdict(cell)
    return record


def cell_from_record(record: dict) -> ExperimentCell:
    """Rebuild a cell from its JSON image; raises on schema mismatch."""
    score = record.get("score")
    return ExperimentCell(
        protocol=record["protocol"],
        message_count=int(record["message_count"]),
        segmenter=record["segmenter"],
        failed=bool(record["failed"]),
        failure_class=str(record.get("failure_class", "")),
        failure_reason=str(record.get("failure_reason", "")),
        score=ClusterScore(**score) if score is not None else None,
        coverage=record.get("coverage"),
        epsilon=record.get("epsilon"),
        unique_segments=int(record.get("unique_segments", 0)),
        runtime_seconds=float(record.get("runtime_seconds", 0.0)),
        refinement=str(record.get("refinement", "none")),
        boundaries_moved=int(record.get("boundaries_moved", 0)),
        msgtype_count=record.get("msgtype_count"),
        msgtype_noise=record.get("msgtype_noise"),
        msgtype_epsilon=record.get("msgtype_epsilon"),
        msgtype_precision=record.get("msgtype_precision"),
        sm_states=record.get("sm_states"),
        sm_transitions=record.get("sm_transitions"),
        sm_holdout_accept=record.get("sm_holdout_accept"),
        sm_truth_coverage=record.get("sm_truth_coverage"),
    )


class SweepCheckpoint:
    """Append-only JSONL store of finished sweep cells.

    One instance serves both recording (:meth:`record`) and resuming
    (:meth:`load`); the same file can accumulate cells from table1 and
    table2 runs of the same sweep, since cells are keyed by
    (protocol, message count, segmenter).
    """

    def __init__(self, path: str | Path, fingerprint: str):
        self.path = Path(path)
        self.fingerprint = fingerprint

    def load(self) -> dict[CellKey, ExperimentCell]:
        """Completed cells recorded for this sweep's fingerprint.

        Torn, malformed, or foreign-fingerprint lines are skipped; a
        later record for the same key wins (re-runs overwrite).
        """
        cells: dict[CellKey, ExperimentCell] = {}
        try:
            text = self.path.read_text()
        except (FileNotFoundError, OSError):
            return cells
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if (
                    payload.get("schema") != CHECKPOINT_SCHEMA
                    or payload.get("fingerprint") != self.fingerprint
                ):
                    continue
                cell = cell_from_record(payload["cell"])
            except (ValueError, KeyError, TypeError):
                continue  # torn tail line or foreign content
            cells[cell_key(cell)] = cell
        return cells

    def record(self, cell: ExperimentCell) -> None:
        """Append one finished cell; never raises on an unwritable path."""
        line = json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA,
                "fingerprint": self.fingerprint,
                "cell": cell_to_record(cell),
            },
            sort_keys=True,
        )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
        except OSError:
            # A read-only checkpoint location degrades to a plain
            # (non-resumable) sweep instead of failing the run.
            pass
