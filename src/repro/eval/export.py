"""Machine-readable export of evaluation artefacts (JSON / CSV).

Downstream consumers (plotting scripts, CI dashboards, the paper-diff
tooling in EXPERIMENTS.md) read these rather than scraping the text
tables.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.eval.coverage_experiment import CoverageComparison
from repro.eval.tables import PAPER_TABLE1, PAPER_TABLE2, Table1, Table2


def table1_records(table: Table1) -> list[dict[str, Any]]:
    records = []
    for row in table.rows:
        paper = PAPER_TABLE1.get((row.protocol, row.message_count))
        records.append(
            {
                "protocol": row.protocol,
                "messages": row.message_count,
                "unique_fields": row.unique_fields,
                "epsilon": round(row.epsilon, 4),
                "precision": round(row.score.precision, 4),
                "recall": round(row.score.recall, 4),
                "fscore": round(row.score.fscore, 4),
                "paper_epsilon": paper[0] if paper else None,
                "paper_precision": paper[1] if paper else None,
                "paper_recall": paper[2] if paper else None,
                "paper_fscore": paper[3] if paper else None,
            }
        )
    return records


def table2_records(table: Table2) -> list[dict[str, Any]]:
    records = []
    for (protocol, count, segmenter), cell in table.cells.items():
        paper = PAPER_TABLE2.get((protocol, count, segmenter))
        record: dict[str, Any] = {
            "protocol": protocol,
            "messages": count,
            "segmenter": segmenter,
            "failed": cell.failed,
            "paper_failed": paper is None,
        }
        if not cell.failed and cell.score is not None:
            record.update(
                precision=round(cell.score.precision, 4),
                recall=round(cell.score.recall, 4),
                fscore=round(cell.score.fscore, 4),
                coverage=round(cell.coverage or 0.0, 4),
            )
        if paper is not None:
            record.update(
                paper_precision=paper[0],
                paper_recall=paper[1],
                paper_fscore=paper[2],
                paper_coverage=paper[3],
            )
        records.append(record)
    return records


def coverage_records(comparison: CoverageComparison) -> list[dict[str, Any]]:
    return [
        {
            "protocol": row.protocol,
            "messages": row.message_count,
            "fieldhunter_coverage": round(row.fieldhunter_coverage, 4),
            "fieldhunter_applicable": row.fieldhunter_applicable,
            "clustering_coverage": round(row.clustering_coverage, 4),
            "best_segmenter": row.best_segmenter,
        }
        for row in comparison.rows
    ]


def to_json(records: list[dict[str, Any]], indent: int = 2) -> str:
    return json.dumps(records, indent=indent)


def to_csv(records: list[dict[str, Any]]) -> str:
    if not records:
        return ""
    # Union of keys, first-record order first (stable headers).
    fieldnames = list(records[0])
    for record in records[1:]:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    writer.writerows(records)
    return buffer.getvalue()
