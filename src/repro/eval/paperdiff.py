"""Reproduction scorecard: quantitative agreement with the paper.

Turns "does the shape hold?" into numbers: per-table mean absolute
F-score deltas, agreement on the per-protocol best segmenter, agreement
on failure cells, and the fraction of rows where both runs call the
result a success (F >= 0.8, the paper's green threshold).  Printed by
``python -m repro.eval scorecard`` and asserted by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.tables import PAPER_TABLE1, PAPER_TABLE2, Table1, Table2

#: The paper colors F-scores >= 0.8 green ("successful analyses").
SUCCESS_THRESHOLD = 0.8


@dataclass
class Scorecard:
    """Agreement statistics between our tables and the paper's."""

    table1_mean_abs_f_delta: float
    table1_mean_abs_epsilon_delta: float
    table1_success_agreement: float
    table2_mean_abs_f_delta: float
    table2_failure_agreement: float
    table2_best_segmenter_agreement: float
    rows_compared: int
    cells_compared: int

    def render(self) -> str:
        return "\n".join(
            [
                "Reproduction scorecard (ours vs. paper)",
                "---------------------------------------",
                f"Table I  rows compared:            {self.rows_compared}",
                f"Table I  mean |dF(1/4)|:           {self.table1_mean_abs_f_delta:.3f}",
                f"Table I  mean |d epsilon|:         {self.table1_mean_abs_epsilon_delta:.3f}",
                f"Table I  success-call agreement:   {self.table1_success_agreement:.0%}",
                f"Table II cells compared:           {self.cells_compared}",
                f"Table II mean |dF(1/4)|:           {self.table2_mean_abs_f_delta:.3f}",
                f"Table II failure-cell agreement:   {self.table2_failure_agreement:.0%}",
                f"Table II best-segmenter agreement: {self.table2_best_segmenter_agreement:.0%}",
            ]
        )


def build_scorecard(table1: Table1, table2: Table2) -> Scorecard:
    """Compare regenerated tables against the paper's printed values."""
    # -- Table I ---------------------------------------------------------
    f_deltas = []
    eps_deltas = []
    success_agree = 0
    for row in table1.rows:
        paper = PAPER_TABLE1[(row.protocol, row.message_count)]
        f_deltas.append(abs(row.score.fscore - paper[3]))
        eps_deltas.append(abs(row.epsilon - paper[0]))
        ours_success = row.score.fscore >= SUCCESS_THRESHOLD
        paper_success = paper[3] >= SUCCESS_THRESHOLD
        success_agree += ours_success == paper_success

    # -- Table II --------------------------------------------------------
    cell_deltas = []
    failure_agree = 0
    failure_total = 0
    ours_best: dict[tuple[str, int], tuple[float, str]] = {}
    paper_best: dict[tuple[str, int], tuple[float, str]] = {}
    for (protocol, count, segmenter), cell in table2.cells.items():
        paper = PAPER_TABLE2[(protocol, count, segmenter)]
        failure_total += 1
        failure_agree += cell.failed == (paper is None)
        if not cell.failed and cell.score is not None:
            key = (protocol, count)
            if key not in ours_best or cell.score.fscore > ours_best[key][0]:
                ours_best[key] = (cell.score.fscore, segmenter)
            if paper is not None:
                cell_deltas.append(abs(cell.score.fscore - paper[2]))
        if paper is not None:
            key = (protocol, count)
            if key not in paper_best or paper[2] > paper_best[key][0]:
                paper_best[key] = (paper[2], segmenter)
    shared_rows = set(ours_best) & set(paper_best)
    best_agree = sum(
        1 for key in shared_rows if ours_best[key][1] == paper_best[key][1]
    )

    return Scorecard(
        table1_mean_abs_f_delta=sum(f_deltas) / len(f_deltas),
        table1_mean_abs_epsilon_delta=sum(eps_deltas) / len(eps_deltas),
        table1_success_agreement=success_agree / len(table1.rows),
        table2_mean_abs_f_delta=(
            sum(cell_deltas) / len(cell_deltas) if cell_deltas else 0.0
        ),
        table2_failure_agreement=failure_agree / failure_total,
        table2_best_segmenter_agreement=(
            best_agree / len(shared_rows) if shared_rows else 0.0
        ),
        rows_compared=len(table1.rows),
        cells_compared=len(cell_deltas),
    )
