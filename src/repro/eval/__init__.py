"""Evaluation harness: runners, tables, figures, and the coverage study.

Each paper artefact maps to one entry point (see DESIGN.md section 4):

- Table I  -> :func:`repro.eval.tables.run_table1`
- Table II -> :func:`repro.eval.tables.run_table2`
- Figure 2 -> :func:`repro.eval.figures.run_figure2`
- Figure 3 -> :func:`repro.eval.figures.run_figure3`
- Coverage headline -> :func:`repro.eval.coverage_experiment.run_coverage_comparison`

``python -m repro.eval <artefact>`` regenerates any of them from the CLI.
"""

from repro.eval.confusion import ConfusionReport, analyze_confusion
from repro.eval.coverage_experiment import CoverageComparison, run_coverage_comparison
from repro.eval.figures import Figure2, Figure3, run_figure2, run_figure3
from repro.eval.paperdiff import Scorecard, build_scorecard
from repro.eval.runner import ExperimentCell, Table1Row, run_cell, run_table1_row
from repro.eval.stability import StabilityResult, run_stability
from repro.eval.tables import Table1, Table2, run_table1, run_table2
from repro.eval.truth import label_with_truth

__all__ = [
    "ConfusionReport",
    "CoverageComparison",
    "ExperimentCell",
    "Figure2",
    "Figure3",
    "Scorecard",
    "StabilityResult",
    "Table1",
    "Table1Row",
    "Table2",
    "analyze_confusion",
    "build_scorecard",
    "label_with_truth",
    "run_cell",
    "run_coverage_comparison",
    "run_figure2",
    "run_figure3",
    "run_stability",
    "run_table1",
    "run_table1_row",
    "run_table2",
]
