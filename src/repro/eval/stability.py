"""Seed-stability study: how robust are the reproduced numbers?

The paper evaluates one capture per protocol.  With synthetic traces we
can do better: re-run any experiment across independent seeds and
report mean and spread, distinguishing structural results (stable
across seeds) from lucky draws.  Used by the ablation benchmarks and by
EXPERIMENTS.md's robustness notes.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.pipeline import ClusteringConfig
from repro.eval.runner import run_cell


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread of one metric across seeds."""

    mean: float
    stdev: float
    minimum: float
    maximum: float
    samples: int

    @classmethod
    def of(cls, values: list[float]) -> "MetricSummary":
        if not values:
            raise ValueError("no samples")
        return cls(
            mean=statistics.fmean(values),
            stdev=statistics.stdev(values) if len(values) > 1 else 0.0,
            minimum=min(values),
            maximum=max(values),
            samples=len(values),
        )

    def __str__(self) -> str:
        return f"{self.mean:.3f} +- {self.stdev:.3f} [{self.minimum:.3f}, {self.maximum:.3f}]"


@dataclass
class StabilityResult:
    """Cross-seed summaries for one experiment cell."""

    protocol: str
    message_count: int
    segmenter: str
    seeds: list[int]
    precision: MetricSummary
    recall: MetricSummary
    fscore: MetricSummary
    coverage: MetricSummary
    epsilon: MetricSummary
    failures: int

    def render(self) -> str:
        return (
            f"{self.protocol}/{self.message_count}/{self.segmenter} over "
            f"{len(self.seeds)} seeds ({self.failures} failed runs):\n"
            f"  precision {self.precision}\n"
            f"  recall    {self.recall}\n"
            f"  F(1/4)    {self.fscore}\n"
            f"  coverage  {self.coverage}\n"
            f"  epsilon   {self.epsilon}"
        )


def run_stability(
    protocol: str,
    message_count: int,
    segmenter: str = "groundtruth",
    seeds: list[int] | None = None,
    config: ClusteringConfig | None = None,
) -> StabilityResult:
    """Run one experiment cell across *seeds* and summarize the metrics."""
    if seeds is None:
        seeds = [11, 23, 37, 42, 59]
    precisions, recalls, fscores, coverages, epsilons = [], [], [], [], []
    failures = 0
    for seed in seeds:
        cell = run_cell(protocol, message_count, segmenter, seed=seed, config=config)
        if cell.failed or cell.score is None:
            failures += 1
            continue
        precisions.append(cell.score.precision)
        recalls.append(cell.score.recall)
        fscores.append(cell.score.fscore)
        coverages.append(cell.coverage or 0.0)
        epsilons.append(cell.epsilon or 0.0)
    if not fscores:
        raise RuntimeError(
            f"every seed failed for {protocol}/{message_count}/{segmenter}"
        )
    return StabilityResult(
        protocol=protocol,
        message_count=message_count,
        segmenter=segmenter,
        seeds=seeds,
        precision=MetricSummary.of(precisions),
        recall=MetricSummary.of(recalls),
        fscore=MetricSummary.of(fscores),
        coverage=MetricSummary.of(coverages),
        epsilon=MetricSummary.of(epsilons),
        failures=failures,
    )
