"""Regeneration of the paper's Table I and Table II."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import ClusteringConfig
from repro.eval.reporting import fmt, fmt_pct, render_table
from repro.eval.runner import (
    DEFAULT_SEED,
    HEURISTIC_SEGMENTERS,
    ExperimentCell,
    Table1Row,
    run_cell,
    run_table1_row,
)
from repro.protocols.registry import ALL_ROWS

#: Paper values for side-by-side comparison in reports:
#: (protocol, messages) -> (epsilon, precision, recall, fscore)
PAPER_TABLE1 = {
    ("dhcp", 1000): (0.172, 0.96, 0.93, 0.95),
    ("dns", 1000): (0.063, 1.00, 0.95, 1.00),
    ("nbns", 1000): (0.049, 1.00, 0.91, 0.99),
    ("ntp", 1000): (0.121, 1.00, 0.96, 1.00),
    ("smb", 1000): (0.218, 0.59, 0.70, 0.60),
    ("awdl", 768): (0.096, 1.00, 0.77, 0.98),
    ("dhcp", 100): (0.212, 0.76, 0.66, 0.75),
    ("dns", 100): (0.143, 1.00, 0.89, 0.99),
    ("nbns", 100): (0.121, 1.00, 0.56, 0.96),
    ("ntp", 100): (0.198, 1.00, 1.00, 1.00),
    ("smb", 100): (0.169, 0.92, 0.48, 0.87),
    ("awdl", 100): (0.101, 0.99, 0.59, 0.95),
    ("au", 123): (0.366, 1.00, 0.44, 0.93),
}

#: (protocol, messages, segmenter) -> (P, R, F, coverage) or None for "fails".
PAPER_TABLE2 = {
    ("dhcp", 1000, "netzob"): None,
    ("dhcp", 1000, "nemesys"): (0.88, 0.33, 0.80, 0.99),
    ("dhcp", 1000, "csp"): (0.85, 0.35, 0.79, 0.99),
    ("dns", 1000, "netzob"): (0.99, 0.96, 0.99, 1.00),
    ("dns", 1000, "nemesys"): (1.00, 0.85, 0.99, 0.99),
    ("dns", 1000, "csp"): (0.95, 0.76, 0.93, 0.99),
    ("nbns", 1000, "netzob"): (0.99, 0.74, 0.97, 1.00),
    ("nbns", 1000, "nemesys"): (1.00, 0.95, 1.00, 1.00),
    ("nbns", 1000, "csp"): (0.90, 0.30, 0.80, 0.99),
    ("ntp", 1000, "netzob"): (0.94, 0.90, 0.94, 0.88),
    ("ntp", 1000, "nemesys"): (0.65, 0.61, 0.64, 0.95),
    ("ntp", 1000, "csp"): (0.68, 0.53, 0.67, 0.73),
    ("smb", 1000, "netzob"): None,
    ("smb", 1000, "nemesys"): (0.57, 0.02, 0.24, 0.81),
    ("smb", 1000, "csp"): (0.38, 0.01, 0.11, 0.79),
    ("awdl", 768, "netzob"): (1.00, 0.93, 0.99, 0.99),
    ("awdl", 768, "nemesys"): (0.80, 0.16, 0.64, 0.98),
    ("awdl", 768, "csp"): None,
    ("dhcp", 100, "netzob"): (0.44, 0.11, 0.38, 0.83),
    ("dhcp", 100, "nemesys"): (0.83, 0.52, 0.80, 0.87),
    ("dhcp", 100, "csp"): (0.24, 0.07, 0.21, 0.87),
    ("dns", 100, "netzob"): (0.98, 0.86, 0.97, 1.00),
    ("dns", 100, "nemesys"): (0.98, 0.75, 0.96, 0.95),
    ("dns", 100, "csp"): (0.46, 0.13, 0.40, 0.87),
    ("nbns", 100, "netzob"): (0.91, 0.85, 0.91, 0.93),
    ("nbns", 100, "nemesys"): (0.98, 0.56, 0.94, 0.99),
    ("nbns", 100, "csp"): (0.93, 0.32, 0.84, 0.82),
    ("ntp", 100, "netzob"): (0.98, 0.23, 0.82, 0.65),
    ("ntp", 100, "nemesys"): (0.87, 0.01, 0.19, 0.39),
    ("ntp", 100, "csp"): (0.71, 0.00, 0.05, 0.65),
    ("smb", 100, "netzob"): (0.59, 0.20, 0.53, 0.81),
    ("smb", 100, "nemesys"): (0.84, 0.12, 0.63, 0.67),
    ("smb", 100, "csp"): (0.42, 0.11, 0.36, 0.74),
    ("awdl", 100, "netzob"): (0.99, 0.51, 0.94, 0.90),
    ("awdl", 100, "nemesys"): (0.59, 0.05, 0.35, 0.92),
    ("awdl", 100, "csp"): (0.99, 0.43, 0.92, 0.92),
    ("au", 123, "netzob"): None,
    ("au", 123, "nemesys"): (1.00, 0.05, 0.49, 0.84),
    ("au", 123, "csp"): (1.00, 0.14, 0.74, 0.81),
}


@dataclass
class Table1:
    rows: list[Table1Row]

    def render(self) -> str:
        body = []
        for row in self.rows:
            paper = PAPER_TABLE1.get((row.protocol, row.message_count))
            body.append(
                [
                    row.protocol,
                    row.message_count,
                    row.unique_fields,
                    fmt(row.epsilon, 3),
                    fmt(row.score.precision),
                    fmt(row.score.recall),
                    fmt(row.score.fscore),
                    fmt(paper[3]) if paper else "",
                ]
            )
        return render_table(
            ["proto", "msgs", "fields", "eps", "P", "R", "F(1/4)", "paper F"],
            body,
            title="Table I - clustering from ground-truth segments",
        )


@dataclass
class Table2:
    cells: dict[tuple[str, int, str], ExperimentCell]

    def render(self) -> str:
        body = []
        for (proto, count, seg), cell in self.cells.items():
            paper = PAPER_TABLE2.get((proto, count, seg))
            paper_f = "fails" if paper is None else fmt(paper[2])
            if cell.failed:
                body.append([proto, count, seg, "fails", "", "", "", paper_f])
            else:
                assert cell.score is not None
                body.append(
                    [
                        proto,
                        count,
                        seg,
                        fmt(cell.score.precision),
                        fmt(cell.score.recall),
                        fmt(cell.score.fscore),
                        fmt_pct(cell.coverage),
                        paper_f,
                    ]
                )
        return render_table(
            ["proto", "msgs", "segmenter", "P", "R", "F(1/4)", "cov", "paper F"],
            body,
            title="Table II - clustering from heuristic segments",
        )

    def average_coverage(self) -> float:
        values = [
            c.coverage for c in self.cells.values() if not c.failed and c.coverage
        ]
        return sum(values) / len(values) if values else 0.0


def run_table1(
    seed: int = DEFAULT_SEED,
    rows: list[tuple[str, int]] | None = None,
    config: ClusteringConfig | None = None,
) -> Table1:
    """Run every Table I row (ground-truth segment clustering)."""
    selected = rows if rows is not None else ALL_ROWS
    return Table1(
        rows=[run_table1_row(p, n, seed=seed, config=config) for p, n in selected]
    )


def run_table2(
    seed: int = DEFAULT_SEED,
    rows: list[tuple[str, int]] | None = None,
    segmenters: tuple[str, ...] = HEURISTIC_SEGMENTERS,
    config: ClusteringConfig | None = None,
) -> Table2:
    """Run every Table II cell (heuristic segmenters x protocols)."""
    selected = rows if rows is not None else ALL_ROWS
    cells = {}
    for proto, count in selected:
        for segmenter in segmenters:
            cells[(proto, count, segmenter)] = run_cell(
                proto, count, segmenter, seed=seed, config=config
            )
    return Table2(cells=cells)
