"""Regeneration of the paper's Table I and Table II."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import ClusteringConfig
from repro.eval.checkpoint import SweepCheckpoint
from repro.eval.reporting import fmt, fmt_pct, render_table
from repro.eval.runner import (
    DEFAULT_SEED,
    HEURISTIC_SEGMENTERS,
    ExperimentCell,
    Table1Row,
    count_cell,
    run_cell,
)
from repro.protocols.registry import ALL_ROWS

#: Paper values for side-by-side comparison in reports:
#: (protocol, messages) -> (epsilon, precision, recall, fscore)
PAPER_TABLE1 = {
    ("dhcp", 1000): (0.172, 0.96, 0.93, 0.95),
    ("dns", 1000): (0.063, 1.00, 0.95, 1.00),
    ("nbns", 1000): (0.049, 1.00, 0.91, 0.99),
    ("ntp", 1000): (0.121, 1.00, 0.96, 1.00),
    ("smb", 1000): (0.218, 0.59, 0.70, 0.60),
    ("awdl", 768): (0.096, 1.00, 0.77, 0.98),
    ("dhcp", 100): (0.212, 0.76, 0.66, 0.75),
    ("dns", 100): (0.143, 1.00, 0.89, 0.99),
    ("nbns", 100): (0.121, 1.00, 0.56, 0.96),
    ("ntp", 100): (0.198, 1.00, 1.00, 1.00),
    ("smb", 100): (0.169, 0.92, 0.48, 0.87),
    ("awdl", 100): (0.101, 0.99, 0.59, 0.95),
    ("au", 123): (0.366, 1.00, 0.44, 0.93),
}

#: (protocol, messages, segmenter) -> (P, R, F, coverage) or None for "fails".
PAPER_TABLE2 = {
    ("dhcp", 1000, "netzob"): None,
    ("dhcp", 1000, "nemesys"): (0.88, 0.33, 0.80, 0.99),
    ("dhcp", 1000, "csp"): (0.85, 0.35, 0.79, 0.99),
    ("dns", 1000, "netzob"): (0.99, 0.96, 0.99, 1.00),
    ("dns", 1000, "nemesys"): (1.00, 0.85, 0.99, 0.99),
    ("dns", 1000, "csp"): (0.95, 0.76, 0.93, 0.99),
    ("nbns", 1000, "netzob"): (0.99, 0.74, 0.97, 1.00),
    ("nbns", 1000, "nemesys"): (1.00, 0.95, 1.00, 1.00),
    ("nbns", 1000, "csp"): (0.90, 0.30, 0.80, 0.99),
    ("ntp", 1000, "netzob"): (0.94, 0.90, 0.94, 0.88),
    ("ntp", 1000, "nemesys"): (0.65, 0.61, 0.64, 0.95),
    ("ntp", 1000, "csp"): (0.68, 0.53, 0.67, 0.73),
    ("smb", 1000, "netzob"): None,
    ("smb", 1000, "nemesys"): (0.57, 0.02, 0.24, 0.81),
    ("smb", 1000, "csp"): (0.38, 0.01, 0.11, 0.79),
    ("awdl", 768, "netzob"): (1.00, 0.93, 0.99, 0.99),
    ("awdl", 768, "nemesys"): (0.80, 0.16, 0.64, 0.98),
    ("awdl", 768, "csp"): None,
    ("dhcp", 100, "netzob"): (0.44, 0.11, 0.38, 0.83),
    ("dhcp", 100, "nemesys"): (0.83, 0.52, 0.80, 0.87),
    ("dhcp", 100, "csp"): (0.24, 0.07, 0.21, 0.87),
    ("dns", 100, "netzob"): (0.98, 0.86, 0.97, 1.00),
    ("dns", 100, "nemesys"): (0.98, 0.75, 0.96, 0.95),
    ("dns", 100, "csp"): (0.46, 0.13, 0.40, 0.87),
    ("nbns", 100, "netzob"): (0.91, 0.85, 0.91, 0.93),
    ("nbns", 100, "nemesys"): (0.98, 0.56, 0.94, 0.99),
    ("nbns", 100, "csp"): (0.93, 0.32, 0.84, 0.82),
    ("ntp", 100, "netzob"): (0.98, 0.23, 0.82, 0.65),
    ("ntp", 100, "nemesys"): (0.87, 0.01, 0.19, 0.39),
    ("ntp", 100, "csp"): (0.71, 0.00, 0.05, 0.65),
    ("smb", 100, "netzob"): (0.59, 0.20, 0.53, 0.81),
    ("smb", 100, "nemesys"): (0.84, 0.12, 0.63, 0.67),
    ("smb", 100, "csp"): (0.42, 0.11, 0.36, 0.74),
    ("awdl", 100, "netzob"): (0.99, 0.51, 0.94, 0.90),
    ("awdl", 100, "nemesys"): (0.59, 0.05, 0.35, 0.92),
    ("awdl", 100, "csp"): (0.99, 0.43, 0.92, 0.92),
    ("au", 123, "netzob"): None,
    ("au", 123, "nemesys"): (1.00, 0.05, 0.49, 0.84),
    ("au", 123, "csp"): (1.00, 0.14, 0.74, 0.81),
}


@dataclass
class Table1:
    rows: list[Table1Row]
    #: Cells whose evaluation failed (recorded, not silently dropped).
    failures: list[ExperimentCell] = field(default_factory=list)

    def render(self) -> str:
        body = []
        for row in self.rows:
            paper = PAPER_TABLE1.get((row.protocol, row.message_count))
            body.append(
                [
                    row.protocol,
                    row.message_count,
                    row.unique_fields,
                    fmt(row.epsilon, 3),
                    fmt(row.score.precision),
                    fmt(row.score.recall),
                    fmt(row.score.fscore),
                    fmt(paper[3]) if paper else "",
                ]
            )
        for cell in self.failures:
            paper = PAPER_TABLE1.get((cell.protocol, cell.message_count))
            body.append(
                [
                    cell.protocol,
                    cell.message_count,
                    cell.unique_segments,
                    "fails",
                    "",
                    "",
                    "",
                    fmt(paper[3]) if paper else "",
                ]
            )
        return render_table(
            ["proto", "msgs", "fields", "eps", "P", "R", "F(1/4)", "paper F"],
            body,
            title="Table I - clustering from ground-truth segments",
        )


@dataclass
class Table2:
    cells: dict[tuple[str, int, str], ExperimentCell]

    def render(self) -> str:
        body = []
        for (proto, count, seg), cell in self.cells.items():
            paper = PAPER_TABLE2.get((proto, count, seg))
            paper_f = "fails" if paper is None else fmt(paper[2])
            if cell.failed:
                body.append([proto, count, seg, "fails", "", "", "", paper_f])
            else:
                assert cell.score is not None
                body.append(
                    [
                        proto,
                        count,
                        seg,
                        fmt(cell.score.precision),
                        fmt(cell.score.recall),
                        fmt(cell.score.fscore),
                        fmt_pct(cell.coverage),
                        paper_f,
                    ]
                )
        return render_table(
            ["proto", "msgs", "segmenter", "P", "R", "F(1/4)", "cov", "paper F"],
            body,
            title="Table II - clustering from heuristic segments",
        )

    def average_coverage(self) -> float:
        values = [
            c.coverage for c in self.cells.values() if not c.failed and c.coverage
        ]
        return sum(values) / len(values) if values else 0.0


def sweep_cells(
    specs: list[tuple[str, int, str]],
    seed: int = DEFAULT_SEED,
    config: ClusteringConfig | None = None,
    checkpoint: SweepCheckpoint | None = None,
    resume: bool = False,
) -> dict[tuple[str, int, str], ExperimentCell]:
    """Evaluate every (protocol, count, segmenter) cell, resumably.

    With a *checkpoint*, each finished cell (ok or failed) is appended
    to the JSONL file as soon as it completes; with ``resume=True``,
    cells already recorded under the same sweep fingerprint are loaded
    back instead of recomputed (counted as ``status="resumed"`` in
    ``repro_eval_cells_total``).  The per-cell exception barrier lives
    in :func:`~repro.eval.runner.run_cell`, so one crashing cell is
    recorded as failed and the sweep continues.
    """
    done = checkpoint.load() if (checkpoint is not None and resume) else {}
    cells: dict[tuple[str, int, str], ExperimentCell] = {}
    for spec in specs:
        if spec in done:
            cells[spec] = done[spec]
            count_cell("resumed")
            continue
        cell = run_cell(spec[0], spec[1], spec[2], seed=seed, config=config)
        if checkpoint is not None:
            checkpoint.record(cell)
        cells[spec] = cell
    return cells


def run_table1(
    seed: int = DEFAULT_SEED,
    rows: list[tuple[str, int]] | None = None,
    config: ClusteringConfig | None = None,
    checkpoint: SweepCheckpoint | None = None,
    resume: bool = False,
) -> Table1:
    """Run every Table I row (ground-truth segment clustering).

    A failed cell becomes a :attr:`Table1.failures` entry (rendered as
    ``fails``) instead of aborting the whole table.
    """
    selected = rows if rows is not None else ALL_ROWS
    specs = [(proto, count, "groundtruth") for proto, count in selected]
    cells = sweep_cells(
        specs, seed=seed, config=config, checkpoint=checkpoint, resume=resume
    )
    table = Table1(rows=[])
    for spec in specs:
        cell = cells[spec]
        if cell.failed:
            table.failures.append(cell)
            continue
        assert cell.score is not None and cell.epsilon is not None
        table.rows.append(
            Table1Row(
                protocol=cell.protocol,
                message_count=cell.message_count,
                unique_fields=cell.unique_segments,
                epsilon=cell.epsilon,
                score=cell.score,
            )
        )
    return table


@dataclass
class ScenarioGrid:
    """Segmenter x refinement x protocol sweep with message types.

    The grid is the scenario-level artefact: each cell composes one
    segmenter with one boundary-refinement pass, clusters field types,
    and runs the message-type stage on top, so one render compares how
    refinement shifts both field scores and type recovery.
    """

    cells: dict[tuple, ExperimentCell]
    #: True when any cell ran the state-machine stage (adds columns).
    statemachine: bool = False

    def render(self) -> str:
        body = []
        for cell in self.cells.values():
            if cell.failed:
                row = [
                    cell.protocol,
                    cell.message_count,
                    cell.segmenter,
                    cell.refinement,
                    "fails",
                    "", "", "", "", "",
                ]
                if self.statemachine:
                    row += ["", "", ""]
                body.append(row)
                continue
            assert cell.score is not None
            row = [
                cell.protocol,
                cell.message_count,
                cell.segmenter,
                cell.refinement,
                fmt(cell.score.precision),
                fmt(cell.score.fscore),
                cell.boundaries_moved,
                cell.msgtype_count if cell.msgtype_count is not None else "",
                cell.msgtype_noise if cell.msgtype_noise is not None else "",
                (
                    fmt(cell.msgtype_precision)
                    if cell.msgtype_precision is not None
                    else ""
                ),
            ]
            if self.statemachine:
                row += [
                    cell.sm_states if cell.sm_states is not None else "",
                    (
                        fmt_pct(cell.sm_holdout_accept)
                        if cell.sm_holdout_accept is not None
                        else ""
                    ),
                    (
                        fmt_pct(cell.sm_truth_coverage)
                        if cell.sm_truth_coverage is not None
                        else ""
                    ),
                ]
            body.append(row)
        headers = [
            "proto", "msgs", "segmenter", "refine",
            "P", "F(1/4)", "moved", "types", "t-noise", "t-P",
        ]
        if self.statemachine:
            headers += ["states", "sm-acc", "sm-cov"]
        return render_table(
            headers,
            body,
            title="Scenario grid - segmenter x refinement x protocol",
        )


def run_grid(
    seed: int = DEFAULT_SEED,
    rows: list[tuple[str, int]] | None = None,
    segmenters: tuple[str, ...] = ("nemesys",),
    refinements: tuple[str, ...] = ("none", "pca"),
    config: ClusteringConfig | None = None,
    checkpoint: SweepCheckpoint | None = None,
    resume: bool = False,
    statemachine: bool = False,
) -> ScenarioGrid:
    """Run the segmenter x refinement x protocol grid, resumably.

    Cell-for-cell resumable like :func:`sweep_cells`, but each cell also
    carries a refinement axis and the message-type stage; cells are
    keyed ``(protocol, count, segmenter)`` for refinement ``"none"`` and
    ``(protocol, count, segmenter, refinement)`` otherwise — the same
    keys :func:`repro.eval.checkpoint.cell_key` derives when loading.
    With *statemachine* each cell also infers the per-session state
    machine and the grid grows state-count / held-out-acceptance /
    truth-coverage columns.
    """
    selected = rows if rows is not None else ALL_ROWS
    done = checkpoint.load() if (checkpoint is not None and resume) else {}
    cells: dict[tuple, ExperimentCell] = {}
    for proto, count in selected:
        for segmenter in segmenters:
            for refinement in refinements:
                key: tuple = (proto, count, segmenter)
                if refinement not in ("", "none"):
                    key = (proto, count, segmenter, refinement)
                if key in done:
                    cells[key] = done[key]
                    count_cell("resumed")
                    continue
                cell = run_cell(
                    proto,
                    count,
                    segmenter,
                    seed=seed,
                    config=config,
                    refinement=refinement,
                    msgtypes=True,
                    statemachine=statemachine,
                )
                if checkpoint is not None:
                    checkpoint.record(cell)
                cells[key] = cell
    return ScenarioGrid(cells=cells, statemachine=statemachine)


def run_table2(
    seed: int = DEFAULT_SEED,
    rows: list[tuple[str, int]] | None = None,
    segmenters: tuple[str, ...] = HEURISTIC_SEGMENTERS,
    config: ClusteringConfig | None = None,
    checkpoint: SweepCheckpoint | None = None,
    resume: bool = False,
) -> Table2:
    """Run every Table II cell (heuristic segmenters x protocols)."""
    selected = rows if rows is not None else ALL_ROWS
    specs = [
        (proto, count, segmenter)
        for proto, count in selected
        for segmenter in segmenters
    ]
    cells = sweep_cells(
        specs, seed=seed, config=config, checkpoint=checkpoint, resume=resume
    )
    return Table2(cells={spec: cells[spec] for spec in specs})
