"""Ground-truth labeling of heuristic segments.

To score a clustering of *heuristic* segments against true data types
(paper Table II), every segment needs a reference label even though its
boundaries rarely coincide with a true field.  Following the byte-
overlap convention, a segment inherits the data type of the true field
it overlaps most (ties broken toward the earlier field).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.segments import Segment
from repro.net.trace import Trace
from repro.protocols.base import ProtocolModel


def dominant_type(segment: Segment, fields) -> str | None:
    """Data type of the true field overlapping *segment* the most."""
    best_type = None
    best_overlap = 0
    for field in fields:
        overlap = min(segment.end, field.end) - max(segment.offset, field.offset)
        if overlap > best_overlap:
            best_overlap = overlap
            best_type = field.ftype
    return best_type


def label_with_truth(
    segments: list[Segment], trace: Trace, model: ProtocolModel
) -> list[Segment]:
    """Attach majority-overlap ground-truth types to heuristic segments."""
    dissections = {
        index: model.dissect(message.data) for index, message in enumerate(trace)
    }
    labeled = []
    for segment in segments:
        fields = dissections.get(segment.message_index)
        if fields is None:
            raise KeyError(f"segment references unknown message {segment.message_index}")
        labeled.append(replace(segment, ftype=dominant_type(segment, fields)))
    return labeled
