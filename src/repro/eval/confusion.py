"""Type-confusion analysis: which true data types get conflated?

The paper explains its SMB failure by inspecting clusters ("timestamps
and signatures have erroneously been placed together in one cluster").
This module mechanizes that inspection: a confusion summary listing,
per cluster, the true-type composition, plus the global pair matrix of
type-vs-type conflations weighted by the pair count they cost.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.pipeline import ClusteringResult
from repro.eval.reporting import render_table


@dataclass(frozen=True)
class Conflation:
    """Two true types sharing clusters, with the false-pair count."""

    type_a: str
    type_b: str
    false_pairs: int
    clusters: tuple[int, ...]


@dataclass
class ConfusionReport:
    """Cluster purity summary + ranked type conflations."""

    cluster_compositions: list[tuple[int, dict[str, int]]]
    conflations: list[Conflation]

    @property
    def pure_cluster_count(self) -> int:
        return sum(1 for _, comp in self.cluster_compositions if len(comp) == 1)

    def render(self, top: int = 10) -> str:
        total = len(self.cluster_compositions)
        lines = [
            f"{self.pure_cluster_count}/{total} clusters are type-pure",
        ]
        if self.conflations:
            body = [
                [c.type_a, c.type_b, c.false_pairs, ",".join(map(str, c.clusters))]
                for c in self.conflations[:top]
            ]
            lines.append(
                render_table(
                    ["type A", "type B", "false pairs", "clusters"],
                    body,
                    title="type conflations (ranked by pair cost)",
                )
            )
        else:
            lines.append("no type conflations — every cluster is pure")
        return "\n".join(lines)


def analyze_confusion(result: ClusteringResult) -> ConfusionReport:
    """Build the confusion report from a scored clustering result.

    Requires ground-truth types on the unique segments (i.e. ground-truth
    segmentation or overlap-labeled heuristic segments).
    """
    compositions: list[tuple[int, dict[str, int]]] = []
    pair_cost: Counter = Counter()
    pair_clusters: dict[tuple[str, str], set[int]] = {}
    for cluster_id, members in enumerate(result.clusters):
        types = Counter()
        for index in members:
            true_type = result.segments[index].true_type
            if true_type is None:
                raise ValueError("segments carry no ground-truth types")
            types[true_type] += 1
        compositions.append((cluster_id, dict(types)))
        distinct = sorted(types)
        for i, type_a in enumerate(distinct):
            for type_b in distinct[i + 1 :]:
                key = (type_a, type_b)
                pair_cost[key] += types[type_a] * types[type_b]
                pair_clusters.setdefault(key, set()).add(cluster_id)
    conflations = [
        Conflation(
            type_a=a,
            type_b=b,
            false_pairs=cost,
            clusters=tuple(sorted(pair_clusters[(a, b)])),
        )
        for (a, b), cost in pair_cost.most_common()
    ]
    return ConfusionReport(
        cluster_compositions=compositions, conflations=conflations
    )
