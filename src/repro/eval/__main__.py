"""Command-line interface: regenerate every paper artefact.

Examples::

    python -m repro.eval table1
    python -m repro.eval table2 --quick
    python -m repro.eval fig2
    python -m repro.eval fig3
    python -m repro.eval coverage
    python -m repro.eval all --seed 7 --trace-out eval.json --metrics-out eval.prom
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cliopts import backend_parent, emit_observability, matrix_options_from_args
from repro.core.matrix import set_default_build_options
from repro.eval.checkpoint import SweepCheckpoint, sweep_fingerprint
from repro.eval.coverage_experiment import run_coverage_comparison
from repro.eval.export import table1_records, table2_records, to_csv, to_json
from repro.eval.figures import run_figure2, run_figure3
from repro.eval.runner import DEFAULT_SEED
from repro.eval.tables import run_grid, run_table1, run_table2
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.tracer import Tracer, use_tracer
from repro.protocols.registry import ALL_ROWS, SMALL_TRACE_ROWS


def _rows(quick: bool):
    return SMALL_TRACE_ROWS if quick else ALL_ROWS


def _export(args, name: str, records: list[dict]) -> None:
    """Write table records as JSON + CSV under --export-dir, if given."""
    if not args.export_dir:
        return
    directory = Path(args.export_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.json").write_text(to_json(records))
    (directory / f"{name}.csv").write_text(to_csv(records))
    print(f"exported {name} to {directory}/{name}.{{json,csv}}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Regenerate the tables and figures of the field type "
        "clustering paper (Kleber et al., DSN-W 2022).",
        parents=[backend_parent()],
    )
    parser.add_argument(
        "artefact",
        choices=[
            "table1", "table2", "grid", "fig2", "fig3",
            "coverage", "scorecard", "all",
        ],
        help="which paper artefact to regenerate",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="only the small-trace rows (fast smoke run)",
    )
    parser.add_argument(
        "--export-dir",
        help="also write table records as JSON + CSV into this directory",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="JSONL file recording each finished table cell; a killed "
        "sweep can later continue from it with --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already recorded in --checkpoint (same seed only)",
    )
    parser.add_argument(
        "--segmenters",
        default="nemesys",
        help="comma-separated segmenters for the grid artefact",
    )
    parser.add_argument(
        "--refinements",
        default="none,pca",
        help="comma-separated refinement passes for the grid artefact",
    )
    parser.add_argument(
        "--protocols",
        default=None,
        help="comma-separated protocols restricting the grid artefact",
    )
    parser.add_argument(
        "--messages",
        type=int,
        default=None,
        help="message count per grid cell (default: the paper's rows)",
    )
    parser.add_argument(
        "--statemachine",
        action="store_true",
        help="also infer per-session state machines in grid cells "
        "(adds state-count / holdout-acceptance / truth-coverage columns)",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint PATH")
    # The grid's cells carry extra state (refinement, msgtypes), so its
    # checkpoints are namespaced apart from the plain table sweeps —
    # and statemachine-bearing grids apart from plain grids.
    fingerprint_kind = None
    if args.artefact == "grid":
        fingerprint_kind = "grid-sm" if args.statemachine else "grid"
    checkpoint = (
        SweepCheckpoint(
            args.checkpoint, sweep_fingerprint(args.seed, kind=fingerprint_kind)
        )
        if args.checkpoint
        else None
    )
    # Experiments build matrices from deep call sites (tables, figures,
    # message-type similarity), so the eval path still configures the
    # process-wide backend defaults; the analyze path threads explicit
    # per-config options instead.
    set_default_build_options(matrix_options_from_args(args))
    tracer = Tracer()
    metrics = MetricsRegistry()

    outputs = []
    with use_tracer(tracer), use_metrics(metrics):
        if args.artefact in ("table1", "all"):
            table = run_table1(
                seed=args.seed,
                rows=_rows(args.quick),
                checkpoint=checkpoint,
                resume=args.resume,
            )
            outputs.append(table.render())
            _export(args, "table1", table1_records(table))
        if args.artefact in ("table2", "all"):
            table2 = run_table2(
                seed=args.seed,
                rows=_rows(args.quick),
                checkpoint=checkpoint,
                resume=args.resume,
            )
            outputs.append(table2.render())
            _export(args, "table2", table2_records(table2))
        if args.artefact == "grid":
            selected = _rows(args.quick)
            if args.protocols:
                wanted = {p.strip() for p in args.protocols.split(",") if p.strip()}
                selected = [row for row in selected if row[0] in wanted]
            if args.messages is not None:
                selected = [(proto, args.messages) for proto, _ in selected]
            grid = run_grid(
                seed=args.seed,
                rows=selected,
                segmenters=tuple(
                    s.strip() for s in args.segmenters.split(",") if s.strip()
                ),
                refinements=tuple(
                    r.strip() for r in args.refinements.split(",") if r.strip()
                ),
                checkpoint=checkpoint,
                resume=args.resume,
                statemachine=args.statemachine,
            )
            outputs.append(grid.render())
        if args.artefact == "scorecard":
            from repro.eval.paperdiff import build_scorecard

            table1 = run_table1(
                seed=args.seed,
                rows=_rows(args.quick),
                checkpoint=checkpoint,
                resume=args.resume,
            )
            table2 = run_table2(
                seed=args.seed,
                rows=_rows(args.quick),
                checkpoint=checkpoint,
                resume=args.resume,
            )
            outputs.append(build_scorecard(table1, table2).render())
        if args.artefact in ("fig2", "all"):
            count = 100 if args.quick else 1000
            outputs.append(run_figure2(message_count=count, seed=args.seed).render())
        if args.artefact in ("fig3", "all"):
            outputs.append(run_figure3(seed=args.seed).render())
        if args.artefact in ("coverage", "all"):
            rows = SMALL_TRACE_ROWS if args.quick else None
            outputs.append(run_coverage_comparison(seed=args.seed, rows=rows).render())
    emit_observability(
        args,
        tracer,
        metrics,
        meta={"command": "eval", "artefact": args.artefact, "seed": args.seed},
    )
    try:
        print("\n\n".join(outputs))
    except BrokenPipeError:  # output piped into head/less that closed early
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
