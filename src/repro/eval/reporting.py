"""Plain-text table rendering for evaluation reports."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    columns = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def fmt(value: float | None, precision: int = 2) -> str:
    """Format an optional float; empty string for None."""
    return "" if value is None else f"{value:.{precision}f}"


def fmt_pct(value: float | None) -> str:
    return "" if value is None else f"{value:.0%}"


def ascii_plot(
    x,
    y,
    width: int = 72,
    height: int = 18,
    marker: str = "*",
    annotations: dict[float, str] | None = None,
) -> str:
    """Minimal ASCII scatter/line plot for terminal reports (Figure 2)."""
    import numpy as np

    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size == 0:
        return "(no data)"
    x_span = (x.max() - x.min()) or 1.0
    y_span = (y.max() - y.min()) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int((xi - x.min()) / x_span * (width - 1))
        row = height - 1 - int((yi - y.min()) / y_span * (height - 1))
        grid[row][col] = marker
    if annotations:
        for x_pos, label in annotations.items():
            col = int((x_pos - x.min()) / x_span * (width - 1))
            col = max(0, min(width - 1, col))
            for row in range(height):
                if grid[row][col] == " ":
                    grid[row][col] = "|"
    lines = ["".join(row) for row in grid]
    lines.append(f"x: [{x.min():.3f}, {x.max():.3f}]  y: [{y.min():.2f}, {y.max():.2f}]")
    if annotations:
        for x_pos, label in annotations.items():
            lines.append(f"| at x={x_pos:.3f}: {label}")
    return "\n".join(lines)
