"""Regeneration of the paper's Figure 2 and Figure 3.

- **Figure 2** plots the ECDF of 2-NN dissimilarities of NTP segments
  with the Kneedle-detected knee used as epsilon.
- **Figure 3** shows typical heuristic boundary errors on NTP
  timestamps: extra boundaries splitting the static prefix from the
  high-entropy fraction bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.autoconf import configure
from repro.core.ecdf import Ecdf
from repro.core.matrix import DissimilarityMatrix
from repro.core.segments import segments_from_fields, unique_segments
from repro.eval.reporting import ascii_plot
from repro.eval.runner import DEFAULT_SEED, prepare_trace
from repro.segmenters.nemesys import NemesysSegmenter


@dataclass
class Figure2:
    """ECDF + smoothed curve + knee for one trace (paper: NTP, 1000)."""

    protocol: str
    message_count: int
    k: int
    ecdf_x: np.ndarray
    ecdf_y: np.ndarray
    smooth_x: np.ndarray
    smooth_y: np.ndarray
    epsilon: float

    def render(self) -> str:
        plot = ascii_plot(
            self.smooth_x,
            self.smooth_y,
            annotations={self.epsilon: f"knee -> epsilon = {self.epsilon:.3f}"},
        )
        header = (
            f"Figure 2 - ECDF E_{self.k} of {self.protocol.upper()} "
            f"({self.message_count} msgs) k-NN dissimilarities, knee = epsilon"
        )
        return header + "\n" + plot


def run_figure2(
    protocol: str = "ntp", message_count: int = 1000, seed: int = DEFAULT_SEED
) -> Figure2:
    """Compute Figure 2's ECDF + knee for one protocol trace."""
    model, trace = prepare_trace(protocol, message_count, seed)
    segments = []
    for index, message in enumerate(trace):
        segments.extend(
            segments_from_fields(index, message.data, model.dissect(message.data))
        )
    uniq = unique_segments(segments)
    matrix = DissimilarityMatrix.build(uniq)
    auto = configure(matrix)
    raw = Ecdf.from_samples(matrix.knn_distances(auto.k))
    ecdf_x, ecdf_y = raw.step_points
    return Figure2(
        protocol=protocol,
        message_count=message_count,
        k=auto.k,
        ecdf_x=ecdf_x,
        ecdf_y=ecdf_y,
        smooth_x=auto.curve_x,
        smooth_y=auto.curve_y,
        epsilon=auto.epsilon,
    )


@dataclass
class Figure3Example:
    """One NTP timestamp with true extent and inferred boundaries."""

    message_index: int
    field_name: str
    field_hex: str
    true_span: tuple[int, int]
    inferred_cuts: list[int]  # boundary offsets relative to the field start

    def render(self) -> str:
        marked = ""
        for i in range(0, len(self.field_hex), 2):
            byte_pos = i // 2
            if byte_pos in self.inferred_cuts:
                marked += "|"
            marked += self.field_hex[i : i + 2]
        return f"msg {self.message_index:4d} {self.field_name:20s} {marked}"


@dataclass
class Figure3:
    examples: list[Figure3Example]

    def render(self) -> str:
        lines = [
            "Figure 3 - heuristic boundary errors inside NTP timestamps",
            "('|' marks an inferred NEMESYS boundary inside the true field)",
        ]
        lines += [example.render() for example in self.examples]
        split = sum(1 for e in self.examples if e.inferred_cuts)
        lines.append(
            f"{split}/{len(self.examples)} sampled timestamps were split by "
            "heuristic boundaries"
        )
        return "\n".join(lines)


def run_figure3(
    message_count: int = 100, seed: int = DEFAULT_SEED, samples: int = 9
) -> Figure3:
    """Collect Figure 3's boundary-error examples from NTP timestamps."""
    model, trace = prepare_trace("ntp", message_count, seed)
    segmenter = NemesysSegmenter()
    examples: list[Figure3Example] = []
    for index, message in enumerate(trace):
        if len(examples) >= samples:
            break
        boundaries = set(segmenter.boundaries(message.data))
        for field in model.dissect(message.data):
            if field.ftype != "timestamp" or len(examples) >= samples:
                continue
            value = field.value(message.data)
            if not any(value):
                continue  # skip all-zero request timestamps
            cuts = sorted(
                b - field.offset
                for b in boundaries
                if field.offset < b < field.end
            )
            if not cuts:
                continue
            examples.append(
                Figure3Example(
                    message_index=index,
                    field_name=field.name,
                    field_hex=value.hex(),
                    true_span=(field.offset, field.end),
                    inferred_cuts=cuts,
                )
            )
    return Figure3(examples=examples)
