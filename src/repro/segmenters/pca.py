"""PCA boundary refinement (Kleber & Kargl, "Refining Network Message
Segmentation with Principal Component Analysis", arXiv 2301.03585).

A heuristic segmenter's boundary errors are *systematic*: when NEMESYS
glues a constant header byte onto the varying field that follows it,
it does so for every message with that header, and the resulting
segments land in one field-type cluster together.  Within such a
cluster the per-byte value variance is concentrated at the misplaced
edge — the aligned byte columns of the common (correctly cut) part are
near-constant, while the foreign bytes dragged in from the neighboring
field vary freely.  Principal component analysis over the cluster's
aligned byte matrix makes that concentration measurable: the leading
eigenvectors load almost exclusively on the misplaced edge positions.

:class:`PcaRefiner` exploits this as a post-pass over any segmenter's
output:

1. run the ordinary field-type clustering over the unrefined segments
   (the same config, so the dissimilarity matrix is bit-identical
   across worker counts and the pass is deterministic);
2. per cluster, align the members of the modal length into an
   ``m x L`` byte matrix and eigendecompose its column covariance;
3. when the high-loading positions of the dominant components form one
   contiguous run touching exactly one segment edge — and every
   position *outside* the run is essentially constant — relocate the
   boundary by the run length (shift the cut, or split at a message
   edge where no cut exists);
4. rebuild only the messages whose cut set actually changed.

The off-run quietness gate in step 3 is what makes the pass a no-op on
ground-truth segmentation: a true value field (timestamp, counter,
identifier) varies across *many* byte positions, so its variance never
looks like a silent field with a foreign edge.  Single-member clusters
have no column variance at all and never propose anything.

:class:`RefinedSegmenter` composes the pass with any registered
segmenter (``resolve_segmenter(name, refinement="pca")``); it is not
incremental — the pass needs the whole trace's clusters — so analysis
sessions refuse it like any other trace-global segmenter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.segments import Segment, UniqueSegment
from repro.net.trace import Trace
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.segmenters.base import Segmenter, boundaries_to_segments

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.pipeline import ClusteringConfig

MOVED_METRIC = "repro_refine_boundaries_moved_total"
_MOVED_HELP = (
    "Segment boundaries relocated by the PCA refinement pass "
    "(decision: shift/merge/split)."
)
RUNS_METRIC = "repro_refine_runs_total"
_RUNS_HELP = "Completed PCA boundary-refinement passes."

#: A cluster contributes to refinement only when at least this many
#: distinct values share the modal length — fewer rows make the column
#: covariance meaningless (and single-member clusters never qualify).
MIN_CLUSTER_ROWS = 5

#: A principal component is considered only when it explains at least
#: this share of the cluster's total byte variance.
EIGEN_SHARE = 0.1

#: A byte position loads "high" on a component when its |loading| is at
#: least this fraction of the component's maximum |loading|.
LOADING_THRESHOLD = 0.66

#: Off-run quietness: every column outside the proposed boundary run
#: must have a standard deviation of at most this fraction of the run's
#: peak column deviation.  This is the gate that keeps true value
#: fields (variance spread over many positions) untouched.
QUIET_STD_RATIO = 0.05

#: Boundaries move by at most this many bytes in one pass.
MAX_SHIFT = 3


@dataclass
class RefinementStats:
    """Outcome of one :meth:`PcaRefiner.refine` pass."""

    #: Clusters inspected (all clusters of the preliminary clustering).
    clusters_scanned: int = 0
    #: Clusters that proposed a boundary relocation.
    clusters_refined: int = 0
    #: Cuts relocated to a previously cut-free position.
    shifted: int = 0
    #: Cuts whose relocation target already held a cut (net removal).
    merged: int = 0
    #: Cuts introduced at a message edge where none existed (net add).
    split: int = 0
    #: Messages whose segment list was rebuilt.
    messages_rebuilt: int = 0

    @property
    def boundaries_moved(self) -> int:
        """Total boundary decisions applied (shift + merge + split)."""
        return self.shifted + self.merged + self.split


@dataclass(frozen=True)
class _Proposal:
    """One boundary relocation: drop *remove* (if any), add *add*."""

    message_index: int
    remove: int | None
    add: int
    decision: str  # provisional; merges are reclassified on apply


class PcaRefiner:
    """Per-cluster PCA boundary refinement over a segmenter's output.

    *config* is the :class:`~repro.core.pipeline.ClusteringConfig` the
    preliminary field-type clustering runs with; passing the analysis
    run's own config keeps the pass deterministic across matrix worker
    counts (the dissimilarity matrix build is bit-identical) and spares
    a second parameterization.  The thresholds default to the module
    constants and exist as keywords for experimentation.
    """

    def __init__(
        self,
        config: "ClusteringConfig | None" = None,
        *,
        min_cluster_rows: int = MIN_CLUSTER_ROWS,
        eigen_share: float = EIGEN_SHARE,
        loading_threshold: float = LOADING_THRESHOLD,
        quiet_std_ratio: float = QUIET_STD_RATIO,
        max_shift: int = MAX_SHIFT,
    ) -> None:
        self.config = config
        self.min_cluster_rows = int(min_cluster_rows)
        self.eigen_share = float(eigen_share)
        self.loading_threshold = float(loading_threshold)
        self.quiet_std_ratio = float(quiet_std_ratio)
        self.max_shift = int(max_shift)
        #: Stats of the most recent :meth:`refine` pass.
        self.last_stats = RefinementStats()

    # -- the per-cluster decision -------------------------------------

    def propose_shift(self, rows: np.ndarray) -> tuple[str, int] | None:
        """Boundary decision for one aligned cluster byte matrix.

        *rows* is the ``m x L`` matrix of equal-length cluster member
        values.  Returns ``("leading", r)`` / ``("trailing", r)`` when
        the dominant principal components load on one contiguous run of
        ``r`` positions touching exactly one edge while the rest of the
        columns are quiet, else None.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ValueError("propose_shift expects an m x L matrix")
        m, length = rows.shape
        if m < 2 or length < 2:
            return None
        centered = rows - rows.mean(axis=0)
        col_var = centered.var(axis=0)
        total = float(col_var.sum())
        if total <= 1e-12:
            return None  # constant cluster: nothing varies, nothing moves
        covariance = (centered.T @ centered) / (m - 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        share = eigenvalues / max(float(eigenvalues.sum()), 1e-12)
        high = np.zeros(length, dtype=bool)
        for component in range(length - 1, -1, -1):
            if share[component] < self.eigen_share:
                break  # eigh sorts ascending; the rest are smaller still
            loadings = np.abs(eigenvectors[:, component])
            high |= loadings >= self.loading_threshold * loadings.max()
        positions = np.flatnonzero(high)
        if positions.size == 0 or positions.size >= length:
            return None
        run = int(positions.size)
        contiguous = positions[-1] - positions[0] + 1 == run
        if not contiguous or run > self.max_shift:
            return None
        if positions[0] == 0 and positions[-1] < length - 1:
            edge, quiet = "leading", np.arange(run, length)
        elif positions[-1] == length - 1 and positions[0] > 0:
            edge, quiet = "trailing", np.arange(0, length - run)
        else:
            return None  # interior variance is a field property, not a cut
        run_std = float(np.sqrt(col_var[positions]).max())
        quiet_std = float(np.sqrt(col_var[quiet]).max())
        if quiet_std > self.quiet_std_ratio * run_std:
            return None  # variance is spread: a true value field
        return edge, run

    # -- the full pass ------------------------------------------------

    def refine(self, trace: Trace, segments: list[Segment]) -> list[Segment]:
        """Refine *segments* of *trace*; returns the new flat list.

        Runs inside one ``refine.pca`` span and reports the decision
        counts to ``repro_refine_boundaries_moved_total``.  Returns the
        input list unchanged (same object) when nothing moves.
        """
        stats = RefinementStats()
        self.last_stats = stats
        with get_tracer().span(
            "refine.pca", segments=len(segments), messages=len(trace)
        ) as span:
            proposals = self._collect_proposals(trace, segments, stats)
            refined = self._apply(trace, segments, proposals, stats)
            span.set(
                clusters_scanned=stats.clusters_scanned,
                clusters_refined=stats.clusters_refined,
                shifted=stats.shifted,
                merged=stats.merged,
                split=stats.split,
                messages_rebuilt=stats.messages_rebuilt,
            )
        metrics = get_metrics()
        metrics.counter(RUNS_METRIC, help=_RUNS_HELP).inc()
        moved = metrics.counter(MOVED_METRIC, help=_MOVED_HELP)
        for decision, count in (
            ("shift", stats.shifted),
            ("merge", stats.merged),
            ("split", stats.split),
        ):
            if count:
                moved.inc(count, decision=decision)
        return refined

    def _collect_proposals(
        self, trace: Trace, segments: list[Segment], stats: RefinementStats
    ) -> list[_Proposal]:
        from repro.core.pipeline import FieldTypeClusterer

        try:
            result = FieldTypeClusterer(self.config).cluster(segments)
        except ValueError:
            return []  # no analyzable segments: nothing to refine
        proposals: list[_Proposal] = []
        for members in result.clusters:
            stats.clusters_scanned += 1
            uniques = [result.segments[i] for i in members]
            # Dissector-derived segments carry ground-truth ftype labels:
            # those boundaries are authoritative, and a true field whose
            # variance happens to sit at one edge (an IPv4 host byte, a
            # MAC address behind a fixed OUI) must not be "refined".
            # Heuristic segments have no labels at segmentation time.
            if any(
                occurrence.ftype is not None
                for unique in uniques
                for occurrence in unique.occurrences
            ):
                continue
            rows = self._modal_rows(uniques)
            if rows is None:
                continue
            aligned, modal_members = rows
            decision = self.propose_shift(aligned)
            if decision is None:
                continue
            stats.clusters_refined += 1
            edge, run = decision
            for unique in modal_members:
                for occurrence in unique.occurrences:
                    data_length = len(trace[occurrence.message_index].data)
                    proposals.append(
                        self._relocate(occurrence, edge, run, data_length)
                    )
        return proposals

    def _modal_rows(
        self, uniques: list[UniqueSegment]
    ) -> tuple[np.ndarray, list[UniqueSegment]] | None:
        """The cluster's modal-length byte matrix plus its row members."""
        counts: dict[int, int] = {}
        for unique in uniques:
            counts[unique.length] = counts.get(unique.length, 0) + 1
        # Deterministic mode: most members first, shorter length on ties.
        length = min(counts, key=lambda le: (-counts[le], le))
        members = [u for u in uniques if u.length == length]
        if length < 2 or len(members) < self.min_cluster_rows:
            return None
        aligned = np.frombuffer(
            b"".join(u.data for u in members), dtype=np.uint8
        ).reshape(len(members), length)
        return aligned.astype(np.float64), members

    @staticmethod
    def _relocate(
        occurrence: Segment, edge: str, run: int, data_length: int
    ) -> _Proposal:
        length = len(occurrence.data)
        if edge == "leading":
            # The foreign head belongs to the previous field: the start
            # cut moves right.  offset == 0 has no cut; split instead.
            remove = occurrence.offset if occurrence.offset > 0 else None
            add = occurrence.offset + run
        else:
            # The foreign tail belongs to the next field: the end cut
            # moves left.  A message-final segment has no end cut.
            end = occurrence.offset + length
            remove = end if end < data_length else None
            add = occurrence.offset + length - run
        decision = "shift" if remove is not None else "split"
        return _Proposal(
            message_index=occurrence.message_index,
            remove=remove,
            add=add,
            decision=decision,
        )

    def _apply(
        self,
        trace: Trace,
        segments: list[Segment],
        proposals: list[_Proposal],
        stats: RefinementStats,
    ) -> list[Segment]:
        if not proposals:
            return segments
        by_message: dict[int, list[Segment]] = {}
        for segment in segments:
            by_message.setdefault(segment.message_index, []).append(segment)
        cuts: dict[int, set[int]] = {
            index: {s.offset for s in members if s.offset > 0}
            for index, members in by_message.items()
        }
        changed: set[int] = set()
        # Deterministic order; the first proposal touching a cut wins.
        for proposal in sorted(
            proposals, key=lambda p: (p.message_index, p.add, p.remove or -1)
        ):
            message_cuts = cuts[proposal.message_index]
            data_length = len(trace[proposal.message_index].data)
            if not 0 < proposal.add < data_length:
                continue
            if proposal.remove is not None and proposal.remove not in message_cuts:
                continue  # an earlier proposal already moved this cut
            if proposal.remove is not None:
                message_cuts.discard(proposal.remove)
                decision = "merge" if proposal.add in message_cuts else "shift"
            else:
                if proposal.add in message_cuts:
                    continue  # split target already cut: nothing to do
                decision = "split"
            message_cuts.add(proposal.add)
            changed.add(proposal.message_index)
            if decision == "shift":
                stats.shifted += 1
            elif decision == "merge":
                stats.merged += 1
            else:
                stats.split += 1
        if not changed:
            return segments
        stats.messages_rebuilt = len(changed)
        refined: list[Segment] = []
        for index in sorted(by_message):
            if index in changed:
                refined.extend(
                    boundaries_to_segments(
                        trace[index].data, sorted(cuts[index]), index
                    )
                )
            else:
                refined.extend(by_message[index])
        return refined


class RefinedSegmenter(Segmenter):
    """A segmenter composed with the PCA boundary-refinement pass.

    Wraps any :class:`~repro.segmenters.base.Segmenter`; its name is
    ``<base>+pca`` so tables and spans attribute results to the
    composition.  Not incremental: the pass clusters the whole trace,
    so chunked segmentation would diverge from a batch pass and
    :class:`~repro.session.AnalysisSession` refuses it.
    """

    incremental = False

    def __init__(
        self,
        base: Segmenter,
        refiner: PcaRefiner | None = None,
        config: "ClusteringConfig | None" = None,
    ) -> None:
        if not isinstance(base, Segmenter):
            raise TypeError(
                f"RefinedSegmenter wraps a Segmenter instance, got {base!r}"
            )
        self.base = base
        self.refiner = refiner or PcaRefiner(config)
        self.name = f"{base.name}+pca"

    @property
    def last_refinement(self) -> RefinementStats:
        """Stats of the most recent refinement pass."""
        return self.refiner.last_stats

    def segment_message(self, data: bytes, message_index: int = 0) -> list[Segment]:
        """Single-message segmentation delegates to the base segmenter
        (refinement needs cluster context across the whole trace)."""
        return self.base.segment_message(data, message_index)

    def segment_trace(self, trace: Trace) -> list[Segment]:
        """Base segmentation followed by the PCA refinement pass."""
        return self.refiner.refine(trace, self.base.segment_trace(trace))
