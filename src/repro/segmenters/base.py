"""Segmenter framework (paper Section III-B).

A segmenter turns a trace into field-candidate :class:`Segment` lists.
Heuristic segmenters work on raw bytes only; the ground-truth segmenter
wraps a protocol dissector.  Segmenters whose resource guards trip raise
:class:`SegmenterResourceError` — the evaluation reports such runs as
"fails", mirroring the four failed analysis runs in the paper's
Table II.
"""

from __future__ import annotations

import abc

from repro.core.segments import Segment
from repro.net.trace import Trace
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer


class SegmenterResourceError(RuntimeError):
    """Raised when a segmenter exceeds its runtime/memory work budget."""


class Segmenter(abc.ABC):
    """Splits every message of a trace into field candidates.

    :meth:`segment` is the public entry point; it wraps the actual
    segmentation (:meth:`segment_trace`, the subclass override point)
    in one ``segment`` span on the active tracer and counts the emitted
    field candidates, so every pipeline run records its segmentation
    stage uniformly across heuristics.
    """

    #: short identifier used in tables ("nemesys", "netzob", "csp", ...)
    name: str = "segmenter"

    #: True when every message is segmented independently (the default
    #: per-message loop), so segmenting a trace chunk by chunk yields
    #: the same segments as one pass over the whole trace.  Segmenters
    #: that override :meth:`segment_trace` with trace-global strategies
    #: (alignment, corpus-wide pattern mining) set this False; the
    #: incremental analysis session refuses them.
    incremental: bool = True

    @abc.abstractmethod
    def segment_message(self, data: bytes, message_index: int = 0) -> list[Segment]:
        """Segment a single message."""

    def segment(self, trace: Trace) -> list[Segment]:
        """Segment every message, recorded as one ``segment`` span."""
        with get_tracer().span(
            "segment", segmenter=self.name, messages=len(trace)
        ) as span:
            segments = self.segment_trace(trace)
            span.set(segments=len(segments))
        get_metrics().counter(
            "repro_segments_total",
            help="Field-candidate segments emitted by segmenters.",
        ).inc(len(segments), segmenter=self.name)
        return segments

    def segment_trace(self, trace: Trace) -> list[Segment]:
        """Segmentation strategy; default is per-message independent."""
        segments: list[Segment] = []
        for index, message in enumerate(trace):
            segments.extend(self.segment_message(message.data, index))
        return segments


def boundaries_to_segments(
    data: bytes, boundaries: list[int], message_index: int
) -> list[Segment]:
    """Convert sorted inner boundary offsets into contiguous segments.

    *boundaries* are cut positions strictly inside (0, len(data)); start
    and end are implicit.  Duplicates and out-of-range positions are
    ignored defensively.
    """
    cuts = sorted({b for b in boundaries if 0 < b < len(data)})
    edges = [0] + cuts + [len(data)]
    return [
        Segment(message_index=message_index, offset=start, data=data[start:end])
        for start, end in zip(edges, edges[1:])
        if end > start
    ]


def segments_to_boundaries(segments: list[Segment]) -> list[int]:
    """Inner boundary offsets of a message's segment list."""
    return [s.offset for s in sorted(segments, key=lambda s: s.offset)[1:]]
