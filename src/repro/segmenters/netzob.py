"""Netzob-style alignment segmenter (Bossert et al., AsiaCCS 2014).

Netzob infers message formats by sequence alignment: similar messages
are aligned, and alignment columns are classified as *static* (one
observed value) or *dynamic* (varying values); field boundaries fall
where the classification changes.  We reproduce the core with a star
multiple alignment over the whole trace and project the column-derived
boundaries back into each message through its alignment mapping.

Netzob's well-known weakness is cost: alignment work grows with the
square of both trace size and message length.  The work guard mirrors
the paper's observation that Netzob "fails due to the exponential
increase in runtime" on the large DHCP and SMB traces — exceeding the
budget raises :class:`SegmenterResourceError`, which the evaluation
reports as "fails".
"""

from __future__ import annotations

from repro.core.segments import Segment
from repro.net.trace import Trace
from repro.segmenters.alignment import StarAlignment, star_align
from repro.segmenters.base import (
    Segmenter,
    SegmenterResourceError,
    boundaries_to_segments,
)

#: Default work budget in DP cells: messages^2 x mean-length^2.
DEFAULT_WORK_BUDGET = 1.0e10


class NetzobSegmenter(Segmenter):
    """Alignment-based segmentation with static/dynamic column fields."""

    name = "netzob"
    #: Alignment is trace-global: a chunk's columns depend on every
    #: message seen, so chunked segmentation diverges from one pass.
    incremental = False

    def __init__(
        self,
        work_budget: float = DEFAULT_WORK_BUDGET,
        min_static_occupancy: float = 0.5,
        group_by_size: bool = False,
        size_bucket: int = 32,
    ):
        """*group_by_size* approximates Netzob's pre-clustering of
        messages: star-align each length bucket (width *size_bucket*)
        separately, so structurally different message kinds do not share
        one alignment.  Off by default — the recorded Table II numbers
        use a single global alignment."""
        self.work_budget = work_budget
        self.min_static_occupancy = min_static_occupancy
        self.group_by_size = group_by_size
        self.size_bucket = size_bucket

    def estimate_work(self, trace: Trace) -> float:
        if not len(trace):
            return 0.0
        mean_len = sum(len(m.data) for m in trace) / len(trace)
        return (len(trace) * mean_len) ** 2

    def segment_trace(self, trace: Trace) -> list[Segment]:
        if not len(trace):
            return []
        work = self.estimate_work(trace)
        if work > self.work_budget:
            raise SegmenterResourceError(
                f"Netzob alignment work {work:.2e} exceeds budget "
                f"{self.work_budget:.2e} (trace too large)"
            )
        messages = [m.data for m in trace]
        if not self.group_by_size:
            return self._segment_group(messages, list(range(len(messages))))
        groups: dict[int, list[int]] = {}
        for index, message in enumerate(messages):
            groups.setdefault(len(message) // self.size_bucket, []).append(index)
        segments: list[Segment] = []
        for indices in groups.values():
            segments.extend(
                self._segment_group([messages[i] for i in indices], indices)
            )
        return segments

    def _segment_group(
        self, messages: list[bytes], original_indices: list[int]
    ) -> list[Segment]:
        """Star-align one message group and project column boundaries."""
        star = star_align(messages)
        column_classes = self._classify_columns(star)
        center_boundaries = self._column_boundaries(column_classes)
        segments: list[Segment] = []
        for position, message in enumerate(messages):
            boundaries = self._project_boundaries(
                center_boundaries, star.mappings[position], len(message)
            )
            segments.extend(
                boundaries_to_segments(
                    message, boundaries, original_indices[position]
                )
            )
        return segments

    def segment_message(self, data: bytes, message_index: int = 0) -> list[Segment]:
        raise NotImplementedError(
            "Netzob segments whole traces (alignment needs the corpus); "
            "use segment()"
        )

    def _classify_columns(self, star: StarAlignment) -> list[str]:
        """static / dynamic / sparse class per center position."""
        total = len(star.mappings)
        classes = []
        for position, values in enumerate(star.columns):
            occupancy = star.occupancy[position] / total if total else 0.0
            if occupancy < self.min_static_occupancy:
                classes.append("sparse")
            elif len(values) == 1:
                classes.append("static")
            else:
                classes.append("dynamic")
        return classes

    def _column_boundaries(self, classes: list[str]) -> list[int]:
        """Center positions where the column class changes."""
        return [
            position
            for position in range(1, len(classes))
            if classes[position] != classes[position - 1]
        ]

    def _project_boundaries(
        self, center_boundaries: list[int], mapping: dict[int, int], length: int
    ) -> list[int]:
        """Map center boundary positions into one message's offsets."""
        boundaries = []
        for center_pos in center_boundaries:
            # The first message byte aligned at or after the boundary.
            candidates = [j for i, j in mapping.items() if i >= center_pos]
            if candidates:
                boundaries.append(min(candidates))
        return [b for b in boundaries if 0 < b < length]
