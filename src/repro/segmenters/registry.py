"""Named segmenter registry: the one place heuristics are looked up.

Historically the CLI choices and :func:`repro.api._resolve_segmenter`
read a module-level dict that callers mutated directly to add their own
segmenters.  The registry replaces that with a validated API —
:func:`register_segmenter` rejects duplicate names and non-
:class:`~repro.segmenters.base.Segmenter` classes up front, instead of
failing later inside an analysis run — while
:func:`available_segmenters` gives the CLIs a stable, sorted choice
list.

The built-in heuristics (nemesys, netzob, csp) are registered by
:mod:`repro.segmenters` on import; the ground-truth segmenter is not —
it needs a protocol model at construction time, so it cannot be built
from a bare name.
"""

from __future__ import annotations

from repro.segmenters.base import Segmenter

#: The backing store.  :data:`repro.api.SEGMENTERS` aliases this dict
#: for backwards compatibility; new code goes through the functions.
_SEGMENTERS: dict[str, type[Segmenter]] = {}


def register_segmenter(
    name: str, cls: type[Segmenter], *, replace: bool = False
) -> type[Segmenter]:
    """Register a segmenter class under *name*; returns *cls*.

    Validates eagerly: *cls* must be a :class:`Segmenter` subclass (an
    instance or unrelated class is a bug at the registration site, not
    something to discover mid-analysis), and duplicate names are
    rejected unless ``replace=True`` is passed explicitly.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"segmenter name must be a non-empty string, got {name!r}")
    if not (isinstance(cls, type) and issubclass(cls, Segmenter)):
        raise TypeError(
            f"register_segmenter expects a Segmenter subclass, got {cls!r}"
        )
    if not replace and name in _SEGMENTERS and _SEGMENTERS[name] is not cls:
        raise ValueError(
            f"segmenter {name!r} is already registered "
            f"({_SEGMENTERS[name].__name__}); pass replace=True to override"
        )
    _SEGMENTERS[name] = cls
    return cls


def available_segmenters() -> tuple[str, ...]:
    """Registered segmenter names, sorted (the CLI ``--segmenter`` choices)."""
    return tuple(sorted(_SEGMENTERS))


#: Boundary-refinement passes composable with any segmenter.  A closed
#: choice list rather than a registry: passes are pipeline stages with
#: their own config surface, not interchangeable heuristics.
REFINEMENTS: tuple[str, ...] = ("none", "pca")


def available_refinements() -> tuple[str, ...]:
    """Refinement pass names (the CLI ``--refinement`` choices)."""
    return REFINEMENTS


def resolve_segmenter(
    segmenter: str | Segmenter,
    refinement: str = "none",
    config=None,
) -> Segmenter:
    """An instance for *segmenter*: pass-through, or construct by name.

    *refinement* composes a boundary-refinement pass with the resolved
    segmenter: ``"pca"`` wraps it in a
    :class:`~repro.segmenters.pca.RefinedSegmenter` running the PCA
    pass of :mod:`repro.segmenters.pca` after base segmentation, with
    *config* (a :class:`~repro.core.pipeline.ClusteringConfig` or None)
    parameterizing the pass's preliminary clustering.  ``"none"``
    returns the bare segmenter.
    """
    if refinement not in REFINEMENTS:
        raise ValueError(
            f"unknown refinement {refinement!r} (choices: {list(REFINEMENTS)})"
        )
    if isinstance(segmenter, Segmenter):
        resolved = segmenter
    else:
        try:
            resolved = _SEGMENTERS[segmenter]()
        except KeyError:
            raise ValueError(
                f"unknown segmenter {segmenter!r} "
                f"(choices: {list(available_segmenters())})"
            ) from None
    if refinement == "none":
        return resolved
    from repro.segmenters.pca import RefinedSegmenter  # import cycle guard

    return RefinedSegmenter(resolved, config=config)
