"""Ground-truth segmentation from protocol dissectors.

Stands in for Wireshark's dissectors (paper Section IV-A): produces the
true field boundaries *and* data-type labels, used both to validate the
clustering idea (Table I) and to score heuristic segmenters (Table II).
"""

from __future__ import annotations

from repro.core.segments import Segment, segments_from_fields
from repro.protocols.base import ProtocolModel
from repro.segmenters.base import Segmenter


class GroundTruthSegmenter(Segmenter):
    """Dissector-backed segmenter emitting typed true fields."""

    name = "groundtruth"

    def __init__(self, model: ProtocolModel):
        self.model = model

    def segment_message(self, data: bytes, message_index: int = 0) -> list[Segment]:
        fields = self.model.dissect(data)
        return segments_from_fields(message_index, data, fields)
