"""CSP segmenter — Contiguous Sequential Pattern extraction (Goo et al.,
IEEE Access 2019).

CSP mines byte-strings that recur across many messages (frequency
analysis) and treats them as protocol structure: static keywords,
delimiters, type codes.  Segmentation then walks each message, matching
the longest frequent pattern at each position; matched stretches become
their own segments, and the unmatched bytes between two matches form
value segments.

Mining is Apriori-style over *contiguous* patterns: frequent patterns of
length k are extended by one byte and re-checked against the support
threshold.  A work guard bounds the candidate table; overflowing it
raises :class:`SegmenterResourceError` — CSP's documented failure mode
on TLV-heavy traces with huge vocabularies (the paper's AWDL-768 run).
"""

from __future__ import annotations

from collections import Counter

from repro.core.segments import Segment
from repro.net.trace import Trace
from repro.segmenters.base import (
    Segmenter,
    SegmenterResourceError,
    boundaries_to_segments,
)


def mine_patterns(
    messages: list[bytes],
    min_support: float = 0.1,
    min_length: int = 2,
    max_length: int = 16,
    max_candidates: int = 200_000,
) -> dict[bytes, int]:
    """Frequent contiguous byte patterns and their message support counts.

    Support counts *messages containing the pattern*, not occurrences.
    """
    if not messages:
        return {}
    threshold = max(2, int(min_support * len(messages)))
    # Seed with frequent single bytes, then grow.
    current: dict[bytes, int] = {}
    counts: Counter = Counter()
    for message in messages:
        counts.update(bytes([b]) for b in set(message))
    current = {p: c for p, c in counts.items() if c >= threshold}
    frequent: dict[bytes, int] = {}
    candidates_seen = len(counts)
    length = 1
    while current and length < max_length:
        length += 1
        extension_counts: Counter = Counter()
        prefixes = set(current)
        for message in messages:
            seen_here = set()
            for offset in range(len(message) - length + 1):
                candidate = message[offset : offset + length]
                if candidate[:-1] in prefixes and candidate not in seen_here:
                    extension_counts[candidate] += 1
                    seen_here.add(candidate)
        candidates_seen += len(extension_counts)
        if candidates_seen > max_candidates:
            raise SegmenterResourceError(
                f"CSP candidate table exceeded {max_candidates} entries "
                f"at pattern length {length}"
            )
        current = {p: c for p, c in extension_counts.items() if c >= threshold}
        for pattern, support in current.items():
            if len(pattern) >= min_length:
                frequent[pattern] = support
    # Closed patterns only: drop patterns subsumed by an equally frequent
    # longer pattern to keep the matcher focused on maximal structure.
    closed: dict[bytes, int] = {}
    for pattern, support in frequent.items():
        subsumed = any(
            pattern != other and pattern in other and frequent[other] >= support
            for other in frequent
            if len(other) == len(pattern) + 1
        )
        if not subsumed:
            closed[pattern] = support
    return closed


class CspSegmenter(Segmenter):
    """Frequency-analysis segmentation via contiguous sequential patterns."""

    name = "csp"
    #: Pattern support is mined over the whole trace, so chunked
    #: segmentation diverges from one pass.
    incremental = False

    def __init__(
        self,
        min_support: float = 0.1,
        min_length: int = 2,
        max_length: int = 16,
        max_candidates: int = 200_000,
    ):
        self.min_support = min_support
        self.min_length = min_length
        self.max_length = max_length
        self.max_candidates = max_candidates
        self._patterns: dict[bytes, int] | None = None

    def fit(self, messages: list[bytes]) -> "CspSegmenter":
        """Mine the pattern vocabulary from a message corpus."""
        self._patterns = mine_patterns(
            messages,
            min_support=self.min_support,
            min_length=self.min_length,
            max_length=self.max_length,
            max_candidates=self.max_candidates,
        )
        return self

    @property
    def patterns(self) -> dict[bytes, int]:
        if self._patterns is None:
            raise RuntimeError("CspSegmenter.fit must run before segmentation")
        return self._patterns

    def segment_trace(self, trace: Trace) -> list[Segment]:
        self.fit([m.data for m in trace])
        segments: list[Segment] = []
        for index, message in enumerate(trace):
            segments.extend(self.segment_message(message.data, index))
        return segments

    def boundaries(self, data: bytes) -> list[int]:
        """Boundary offsets: edges of greedy longest-pattern matches."""
        patterns = self.patterns
        by_length = sorted({len(p) for p in patterns}, reverse=True)
        boundaries: list[int] = []
        offset = 0
        while offset < len(data):
            matched = 0
            for length in by_length:
                if data[offset : offset + length] in patterns:
                    matched = length
                    break
            if matched:
                boundaries.append(offset)
                boundaries.append(offset + matched)
                offset += matched
            else:
                offset += 1
        return sorted({b for b in boundaries if 0 < b < len(data)})

    def segment_message(self, data: bytes, message_index: int = 0) -> list[Segment]:
        return boundaries_to_segments(data, self.boundaries(data), message_index)
