"""Sequence alignment substrate for the Netzob-style segmenter.

Provides Needleman–Wunsch global alignment of byte sequences and a
star-shaped multiple alignment (every message aligned to one center
message), which is the classic cheap approximation of progressive MSA
and sufficient to recover Netzob's column model: per-position value
populations over a common coordinate system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

MATCH_SCORE = 10
MISMATCH_SCORE = -2
GAP_SCORE = -4

_DIAG, _UP, _LEFT = 0, 1, 2


@dataclass(frozen=True)
class Alignment:
    """Pairwise alignment as a list of (i, j) steps.

    Each pair aligns position i of sequence *a* with position j of *b*;
    i or j is None for gaps (insertion in the other sequence).
    """

    score: int
    pairs: tuple[tuple[int | None, int | None], ...]


def needleman_wunsch(
    a: bytes,
    b: bytes,
    match: int = MATCH_SCORE,
    mismatch: int = MISMATCH_SCORE,
    gap: int = GAP_SCORE,
) -> Alignment:
    """Global alignment of byte strings *a* and *b*.

    The DP fills row by row with vectorized numpy operations; traceback
    uses a direction matrix.  O(len(a)*len(b)) time and memory.
    """
    m, n = len(a), len(b)
    if m == 0 or n == 0:
        pairs = [(i, None) for i in range(m)] + [(None, j) for j in range(n)]
        return Alignment(score=gap * (m + n), pairs=tuple(pairs))
    a_arr = np.frombuffer(a, dtype=np.uint8).astype(np.int32)
    b_arr = np.frombuffer(b, dtype=np.uint8).astype(np.int32)
    score = np.zeros((m + 1, n + 1), dtype=np.int32)
    direction = np.zeros((m + 1, n + 1), dtype=np.int8)
    score[0, :] = gap * np.arange(n + 1)
    score[:, 0] = gap * np.arange(m + 1)
    direction[0, 1:] = _LEFT
    direction[1:, 0] = _UP
    for i in range(1, m + 1):
        substitution = np.where(b_arr == a_arr[i - 1], match, mismatch)
        diag = score[i - 1, :-1] + substitution
        up = score[i - 1, 1:] + gap
        # The left-dependency is sequential within a row.
        row = score[i]
        dirs = direction[i]
        prev = row[0]
        for j in range(1, n + 1):
            best = diag[j - 1]
            kind = _DIAG
            if up[j - 1] > best:
                best = up[j - 1]
                kind = _UP
            left = prev + gap
            if left > best:
                best = left
                kind = _LEFT
            row[j] = best
            dirs[j] = kind
            prev = best
    pairs: list[tuple[int | None, int | None]] = []
    i, j = m, n
    while i > 0 or j > 0:
        kind = direction[i, j]
        if i > 0 and j > 0 and kind == _DIAG:
            i -= 1
            j -= 1
            pairs.append((i, j))
        elif i > 0 and (kind == _UP or j == 0):
            i -= 1
            pairs.append((i, None))
        else:
            j -= 1
            pairs.append((None, j))
    pairs.reverse()
    return Alignment(score=int(score[m, n]), pairs=tuple(pairs))


@dataclass
class StarAlignment:
    """All messages aligned against one center message."""

    center_index: int
    center: bytes
    #: per message: center position -> message position (aligned bytes only)
    mappings: list[dict[int, int]]
    #: per center position: observed byte values across messages
    columns: list[set[int]]
    #: per center position: number of messages with an aligned byte there
    occupancy: np.ndarray


def pick_center(messages: list[bytes]) -> int:
    """Median-length message (stable tie-break by index)."""
    order = sorted(range(len(messages)), key=lambda i: (len(messages[i]), i))
    return order[len(order) // 2]


def star_align(messages: list[bytes], center_index: int | None = None) -> StarAlignment:
    """Align every message to the center message."""
    if not messages:
        raise ValueError("no messages to align")
    if center_index is None:
        center_index = pick_center(messages)
    center = messages[center_index]
    columns: list[set[int]] = [set() for _ in range(len(center))]
    occupancy = np.zeros(len(center), dtype=np.int64)
    mappings: list[dict[int, int]] = []
    for message in messages:
        mapping: dict[int, int] = {}
        alignment = needleman_wunsch(center, message)
        for i, j in alignment.pairs:
            if i is not None and j is not None:
                mapping[i] = j
                columns[i].add(message[j])
                occupancy[i] += 1
        mappings.append(mapping)
    return StarAlignment(
        center_index=center_index,
        center=center,
        mappings=mappings,
        columns=columns,
        occupancy=occupancy,
    )
