"""NEMESYS heuristic segmenter (Kleber, Kopp, Kargl — WOOT 2018).

NEMESYS infers probable field boundaries from the *bit congruence* of
consecutive bytes: the fraction of equal bits between byte i-1 and
byte i.  Field starts show up as distinctive changes in this signal.
The algorithm:

1. compute the bit congruence ``BC(i)`` for every byte,
2. take its delta ``dBC(i) = BC(i) - BC(i-1)``,
3. smooth with a small Gaussian kernel (sigma 0.6),
4. place a boundary at the inflection point of each rising edge of the
   smoothed delta (the steepest ascent between a local minimum and the
   following local maximum),
5. apply the paper's "safety net" refinements: isolate printable
   character runs as their own segments and merge runs of zero bytes
   with a trailing boundary correction.

Boundary errors on high-entropy fields (timestamps, signatures) are an
inherent property of the heuristic — the paper's Figure 3 shows exactly
this failure, which we reproduce faithfully.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter1d

from repro.core.segments import Segment
from repro.segmenters.base import Segmenter, boundaries_to_segments

_POPCOUNT = np.array([bin(x).count("1") for x in range(256)], dtype=np.float64)


def bit_congruence(data: bytes) -> np.ndarray:
    """BC(i) for i in [1, len): fraction of equal bits of bytes i-1, i."""
    if len(data) < 2:
        return np.zeros(0)
    arr = np.frombuffer(data, dtype=np.uint8)
    xor = np.bitwise_xor(arr[:-1], arr[1:])
    return 1.0 - _POPCOUNT[xor] / 8.0


def delta_bc(data: bytes) -> np.ndarray:
    """Delta of the bit congruence, aligned so index i maps to byte i+2."""
    bc = bit_congruence(data)
    if bc.size < 2:
        return np.zeros(0)
    return np.diff(bc)


def smoothed_delta_bc(data: bytes, sigma: float = 0.6) -> np.ndarray:
    delta = delta_bc(data)
    if delta.size == 0:
        return delta
    return gaussian_filter1d(delta, sigma=sigma)


def _rising_inflections(smoothed: np.ndarray) -> list[int]:
    """Indices of the steepest rise between each local min and next max."""
    if smoothed.size < 3:
        return []
    boundaries = []
    slope = np.diff(smoothed)
    i = 0
    size = smoothed.size
    while i < size - 1:
        # Find a local minimum (start of a rising edge).
        if smoothed[i + 1] > smoothed[i] and (i == 0 or smoothed[i - 1] >= smoothed[i]):
            j = i
            while j < size - 1 and smoothed[j + 1] > smoothed[j]:
                j += 1
            # Steepest single-step ascent within (i, j].
            rise = slope[i:j]
            if rise.size:
                steepest = i + int(np.argmax(rise)) + 1
                boundaries.append(steepest)
            i = j
        else:
            i += 1
    return boundaries


def _is_char(byte: int) -> bool:
    return 0x20 <= byte < 0x7F


def _zero_run_boundaries(data: bytes, min_run: int) -> tuple[list[int], list[int]]:
    """Start/end cut positions of zero-byte runs of at least *min_run*.

    The NEMESYS paper's refinement: long zero runs are padding or unset
    fields; isolating them keeps their neighbors' boundaries clean.
    """
    starts: list[int] = []
    ends: list[int] = []
    run_start = None
    for index in range(len(data) + 1):
        is_zero = index < len(data) and data[index] == 0
        if is_zero and run_start is None:
            run_start = index
        elif not is_zero and run_start is not None:
            if index - run_start >= min_run:
                starts.append(run_start)
                ends.append(index)
            run_start = None
    return starts, ends


def _char_run_boundaries(data: bytes, min_run: int = 4) -> tuple[list[int], list[int]]:
    """Start/end cut positions of printable character runs of min length.

    NEMESYS treats char sequences specially: a long printable run is very
    likely one text field, so its interior boundaries are dropped and its
    edges become boundaries.
    """
    starts: list[int] = []
    ends: list[int] = []
    run_start = None
    for index in range(len(data) + 1):
        is_char = index < len(data) and _is_char(data[index])
        if is_char and run_start is None:
            run_start = index
        elif not is_char and run_start is not None:
            if index - run_start >= min_run:
                starts.append(run_start)
                ends.append(index)
            run_start = None
    return starts, ends


class NemesysSegmenter(Segmenter):
    """Bit-congruence-based heuristic segmentation."""

    name = "nemesys"

    def __init__(
        self,
        sigma: float = 0.6,
        char_min_run: int = 4,
        zero_min_run: int | None = None,
    ):
        self.sigma = sigma
        self.char_min_run = char_min_run
        #: Isolate zero runs of at least this length as their own
        #: segments (the NEMESYS paper's padding refinement).  Off by
        #: default to keep the Table II results at their recorded
        #: configuration; enable for padding-heavy protocols (DHCP).
        self.zero_min_run = zero_min_run

    def boundaries(self, data: bytes) -> list[int]:
        """Inner boundary offsets for one message."""
        if len(data) < 3:
            return []
        smoothed = smoothed_delta_bc(data, sigma=self.sigma)
        # Index i of the delta maps to the boundary *before* byte i+2:
        # delta[i] = BC(i+2) - BC(i+1) compares the transitions around
        # byte i+1/i+2.
        raw = [i + 2 for i in _rising_inflections(smoothed)]
        raw = self._apply_run_refinement(
            data, raw, _char_run_boundaries(data, self.char_min_run)
        )
        if self.zero_min_run is not None:
            raw = self._apply_run_refinement(
                data, raw, _zero_run_boundaries(data, self.zero_min_run)
            )
        return sorted({b for b in raw if 0 < b < len(data)})

    def _apply_run_refinement(
        self, data: bytes, boundaries: list[int], runs: tuple[list[int], list[int]]
    ) -> list[int]:
        """Drop boundaries inside detected runs; cut at the run edges."""
        starts, ends = runs
        if not starts:
            return boundaries
        kept = [
            b
            for b in boundaries
            if not any(s < b < e for s, e in zip(starts, ends))
        ]
        return kept + starts + ends

    def segment_message(self, data: bytes, message_index: int = 0) -> list[Segment]:
        return boundaries_to_segments(data, self.boundaries(data), message_index)
