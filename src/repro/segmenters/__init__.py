"""Segmenters: ground truth plus the three heuristics the paper compares.

- :class:`~repro.segmenters.groundtruth.GroundTruthSegmenter` — dissector
  fields (Table I),
- :class:`~repro.segmenters.nemesys.NemesysSegmenter` — bit congruence
  (Kleber et al., WOOT 2018),
- :class:`~repro.segmenters.netzob.NetzobSegmenter` — sequence alignment
  (Bossert et al., AsiaCCS 2014),
- :class:`~repro.segmenters.csp.CspSegmenter` — contiguous sequential
  patterns (Goo et al., 2019).
"""

from repro.segmenters.base import (
    Segmenter,
    SegmenterResourceError,
    boundaries_to_segments,
    segments_to_boundaries,
)
from repro.segmenters.csp import CspSegmenter, mine_patterns
from repro.segmenters.groundtruth import GroundTruthSegmenter
from repro.segmenters.nemesys import NemesysSegmenter, bit_congruence
from repro.segmenters.netzob import NetzobSegmenter
from repro.segmenters.pca import PcaRefiner, RefinedSegmenter, RefinementStats
from repro.segmenters.registry import (
    available_refinements,
    available_segmenters,
    register_segmenter,
    resolve_segmenter,
)

# The built-in heuristics the CLIs can construct from a bare name.  The
# ground-truth segmenter is deliberately absent: it needs a protocol
# model at construction time (see repro.eval.runner.make_segmenter).
register_segmenter("nemesys", NemesysSegmenter)
register_segmenter("netzob", NetzobSegmenter)
register_segmenter("csp", CspSegmenter)

__all__ = [
    "CspSegmenter",
    "GroundTruthSegmenter",
    "NemesysSegmenter",
    "NetzobSegmenter",
    "PcaRefiner",
    "RefinedSegmenter",
    "RefinementStats",
    "Segmenter",
    "SegmenterResourceError",
    "available_refinements",
    "available_segmenters",
    "bit_congruence",
    "boundaries_to_segments",
    "mine_patterns",
    "register_segmenter",
    "resolve_segmenter",
    "segments_to_boundaries",
]
