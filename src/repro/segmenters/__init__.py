"""Segmenters: ground truth plus the three heuristics the paper compares.

- :class:`~repro.segmenters.groundtruth.GroundTruthSegmenter` — dissector
  fields (Table I),
- :class:`~repro.segmenters.nemesys.NemesysSegmenter` — bit congruence
  (Kleber et al., WOOT 2018),
- :class:`~repro.segmenters.netzob.NetzobSegmenter` — sequence alignment
  (Bossert et al., AsiaCCS 2014),
- :class:`~repro.segmenters.csp.CspSegmenter` — contiguous sequential
  patterns (Goo et al., 2019).
"""

from repro.segmenters.base import (
    Segmenter,
    SegmenterResourceError,
    boundaries_to_segments,
    segments_to_boundaries,
)
from repro.segmenters.csp import CspSegmenter, mine_patterns
from repro.segmenters.groundtruth import GroundTruthSegmenter
from repro.segmenters.nemesys import NemesysSegmenter, bit_congruence
from repro.segmenters.netzob import NetzobSegmenter

__all__ = [
    "CspSegmenter",
    "GroundTruthSegmenter",
    "NemesysSegmenter",
    "NetzobSegmenter",
    "Segmenter",
    "SegmenterResourceError",
    "bit_congruence",
    "boundaries_to_segments",
    "mine_patterns",
    "segments_to_boundaries",
]
