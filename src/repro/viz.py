"""Visual analytics for pseudo data types (paper Section V outlook).

The paper closes with the vision that "identified data types and visual
analytics will improve the analysis efficiency of unknown network
messages".  This module supplies the two workhorse views without any
plotting dependency:

- a classical-MDS 2-D embedding of the segment dissimilarity matrix,
  rendered as a self-contained SVG (clusters colored, noise gray), and
- an ASCII scatter of the same embedding for terminal sessions.
"""

from __future__ import annotations

import html
from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import ClusteringResult

#: Qualitative palette (Okabe-Ito, color-blind safe), cycled per cluster.
PALETTE = [
    "#0072B2",
    "#E69F00",
    "#009E73",
    "#CC79A7",
    "#56B4E9",
    "#D55E00",
    "#F0E442",
    "#000000",
]

NOISE_COLOR = "#BBBBBB"


def classical_mds(distances: np.ndarray, dimensions: int = 2) -> np.ndarray:
    """Classical (Torgerson) multidimensional scaling.

    Embeds points so Euclidean distances approximate *distances*.
    Returns an (n, dimensions) coordinate array; degenerate inputs
    (fewer points than dimensions, zero variance) fall back to zeros in
    the missing axes.
    """
    distances = np.asarray(distances, dtype=np.float64)
    n = distances.shape[0]
    if n == 0:
        return np.zeros((0, dimensions))
    squared = distances**2
    centering = np.eye(n) - np.ones((n, n)) / n
    b = -0.5 * centering @ squared @ centering
    eigenvalues, eigenvectors = np.linalg.eigh(b)
    order = np.argsort(eigenvalues)[::-1][:dimensions]
    values = np.clip(eigenvalues[order], 0.0, None)
    coords = eigenvectors[:, order] * np.sqrt(values)[np.newaxis, :]
    if coords.shape[1] < dimensions:
        coords = np.hstack(
            [coords, np.zeros((n, dimensions - coords.shape[1]))]
        )
    return coords


@dataclass
class EmbeddedClustering:
    """2-D embedding of a clustering result, ready to render."""

    coordinates: np.ndarray  # (n, 2)
    labels: np.ndarray  # cluster id per point, -1 noise
    hover: list[str]  # per-point tooltip text

    @classmethod
    def from_result(cls, result: ClusteringResult) -> "EmbeddedClustering":
        coords = classical_mds(result.matrix.values)
        labels = result.labels()
        hover = [
            f"cluster {labels[i]}: {segment.data.hex()} (x{segment.count})"
            for i, segment in enumerate(result.segments)
        ]
        return cls(coordinates=coords, labels=labels, hover=hover)


def render_svg(
    embedding: EmbeddedClustering,
    width: int = 720,
    height: int = 540,
    point_radius: float = 3.5,
    title: str = "pseudo data types",
) -> str:
    """Self-contained SVG scatter of the embedding."""
    coords = embedding.coordinates
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="12" y="20" font-family="sans-serif" font-size="14">'
        f"{html.escape(title)}</text>",
    ]
    if len(coords):
        margin = 30
        spans = coords.max(axis=0) - coords.min(axis=0)
        spans[spans == 0] = 1.0
        scaled = (coords - coords.min(axis=0)) / spans
        xs = margin + scaled[:, 0] * (width - 2 * margin)
        ys = margin + (1 - scaled[:, 1]) * (height - 2 * margin)
        # Noise first so cluster points draw on top.
        order = np.argsort(embedding.labels != -1)
        for index in order:
            label = int(embedding.labels[index])
            color = NOISE_COLOR if label == -1 else PALETTE[label % len(PALETTE)]
            tooltip = html.escape(embedding.hover[index])
            parts.append(
                f'<circle cx="{xs[index]:.1f}" cy="{ys[index]:.1f}" '
                f'r="{point_radius}" fill="{color}" fill-opacity="0.8">'
                f"<title>{tooltip}</title></circle>"
            )
        # Legend.
        seen = sorted({int(l) for l in embedding.labels if l >= 0})
        for slot, label in enumerate(seen[: len(PALETTE)]):
            y = 40 + slot * 18
            color = PALETTE[label % len(PALETTE)]
            parts.append(
                f'<circle cx="{width - 110}" cy="{y}" r="5" fill="{color}"/>'
                f'<text x="{width - 98}" y="{y + 4}" font-family="sans-serif" '
                f'font-size="12">cluster {label}</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def render_ascii(
    embedding: EmbeddedClustering, width: int = 78, height: int = 24
) -> str:
    """Terminal scatter: digits = cluster ids (mod 10), '.' = noise."""
    coords = embedding.coordinates
    if not len(coords):
        return "(no segments)"
    spans = coords.max(axis=0) - coords.min(axis=0)
    spans[spans == 0] = 1.0
    scaled = (coords - coords.min(axis=0)) / spans
    grid = [[" "] * width for _ in range(height)]
    for index in range(len(coords)):
        col = int(scaled[index, 0] * (width - 1))
        row = int((1 - scaled[index, 1]) * (height - 1))
        label = int(embedding.labels[index])
        marker = "." if label == -1 else str(label % 10)
        # Cluster markers win over noise on collisions.
        if grid[row][col] in (" ", "."):
            grid[row][col] = marker
    return "\n".join("".join(row) for row in grid)


def save_svg(result: ClusteringResult, path: str, title: str = "pseudo data types") -> str:
    """Convenience: embed + render + write; returns the path."""
    svg = render_svg(EmbeddedClustering.from_result(result), title=title)
    with open(path, "w") as handle:
        handle.write(svg)
    return path
