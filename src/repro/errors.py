"""Shared error taxonomy and the ingest quarantine report.

Every failure the pipeline can *survive* is classified under one
:class:`ReproError` root so callers can write one ``except`` clause per
degradation domain:

- :class:`IngestError` — malformed capture input (pcap/pcapng framing,
  truncated records, unparseable frames).  It subclasses
  :class:`ValueError` because the historical reader exception,
  :class:`repro.net.pcap.PcapError`, did; existing ``except PcapError``
  / ``except ValueError`` call sites keep working unchanged.
- :class:`ComputeError` — a worker-pool computation that could not be
  completed even after the retry/serial-fallback ladder.
- :class:`CacheError` — an on-disk cache entry that failed validation
  (bad checksum, wrong payload schema).  Cache consumers treat it as a
  miss; it never propagates out of :mod:`repro.core.matrixcache`.

Lenient ingest (``strict=False`` on :func:`repro.net.pcap.read_pcap`,
:func:`repro.net.pcapng.read_pcapng`, and
:func:`repro.net.trace.load_trace`) does not raise on malformed
*records*: it salvages everything before the first corruption and files
the rest into a :class:`QuarantineReport`.  Header-level corruption
(bad magic, unsupported version) still raises even in lenient mode —
there is nothing to salvage from a file we cannot frame at all.

Counters (Prometheus names; the design notes' dotted spellings map as
``ingest.records.ok`` → ``repro_ingest_records_total{status="ok"}``):

- ``repro_ingest_records_total{status=ok|quarantined|salvaged_tail}``
- ``repro_ingest_frames_unparsed_total`` — Ethernet frames kept with
  their raw payload after :func:`parse_ethernet_frame` failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.metrics import get_metrics


class ReproError(Exception):
    """Root of the repro error taxonomy."""


class IngestError(ReproError, ValueError):
    """Malformed capture input (file framing, records, frames)."""


class ComputeError(ReproError, RuntimeError):
    """A computation failed permanently despite retry and fallback."""


class CacheError(ReproError):
    """An on-disk cache entry failed validation and was discarded."""


class ServiceError(ReproError):
    """Root of the long-running-service degradation domain.

    Raised (or mapped into structured wire responses) by ``repro-serve``
    when a request is refused rather than failed: the subclass carries a
    stable machine-readable ``code`` that becomes the ``error`` field of
    the service's JSON error envelope, so clients can branch on the
    degradation kind without parsing prose.
    """

    #: Stable wire code for the JSON error envelope.
    code = "service_error"


class DeadlineExceeded(ServiceError, TimeoutError):
    """An operation ran past its configured deadline and was abandoned.

    The underlying executor call cannot be killed, only disowned: its
    side effects may still land (an append journals before it applies,
    so a timed-out append is *ambiguous* — it may apply late or on the
    next restart's replay, never be half-applied).
    """

    code = "deadline_exceeded"


class ResourceExhausted(ServiceError, RuntimeError):
    """A resource watchdog refused work to protect the process.

    The memory guard trips this for appends once process RSS crosses the
    configured limit; read-only operations keep being served.
    """

    code = "resource_exhausted"


class ServiceOverloaded(ServiceError, RuntimeError):
    """Admission control rejected a request (queue full / client cap).

    ``retry_after_ms`` is the service's estimate of when capacity will
    free up, surfaced verbatim in the rejection envelope.
    """

    code = "overloaded"

    def __init__(self, message: str, retry_after_ms: int = 1000):
        super().__init__(message)
        self.retry_after_ms = int(retry_after_ms)


INGEST_RECORDS_METRIC = "repro_ingest_records_total"
INGEST_UNPARSED_METRIC = "repro_ingest_frames_unparsed_total"

_RECORDS_HELP = "Capture records read, by outcome (ok/quarantined/salvaged_tail)."
_UNPARSED_HELP = "Frames kept with raw payload after link-layer parsing failed."


def count_records(status: str, amount: int = 1) -> None:
    """Increment ``repro_ingest_records_total{status=...}``."""
    if amount:
        get_metrics().counter(INGEST_RECORDS_METRIC, help=_RECORDS_HELP).inc(
            amount, status=status
        )


def count_unparsed_frame(amount: int = 1) -> None:
    """Increment ``repro_ingest_frames_unparsed_total``."""
    get_metrics().counter(INGEST_UNPARSED_METRIC, help=_UNPARSED_HELP).inc(amount)


def ingest_counters() -> dict[str, int]:
    """Dict snapshot of the ingest counters in the active registry."""
    registry = get_metrics()
    records = registry.counter(INGEST_RECORDS_METRIC, help=_RECORDS_HELP)
    unparsed = registry.counter(INGEST_UNPARSED_METRIC, help=_UNPARSED_HELP)
    return {
        "ok": int(records.value(status="ok")),
        "quarantined": int(records.value(status="quarantined")),
        "salvaged_tail": int(records.value(status="salvaged_tail")),
        "unparsed_frames": int(unparsed.value()),
    }


@dataclass
class QuarantinedRecord:
    """One malformed capture record set aside by the lenient reader.

    *index* is the record's ordinal in the capture (0-based, counting
    every record the reader saw), *offset* the byte position of the
    record header in the file, *reason* a stable machine-readable slug,
    *detail* the human explanation, and *data* whatever raw bytes could
    still be recovered (possibly empty).
    """

    index: int
    offset: int
    reason: str
    detail: str
    data: bytes = b""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "offset": self.offset,
            "reason": self.reason,
            "detail": self.detail,
            "data_len": len(self.data),
        }


@dataclass
class QuarantineReport:
    """Structured outcome of one lenient ingest.

    ``ok_count`` records parsed cleanly; ``records`` were quarantined;
    ``truncated_tail`` is set when the reader hit corruption it could
    not skip past and salvaged only the prefix; ``unparsed_frames``
    counts frames kept with their raw payload after link-layer parsing
    failed (those are *not* quarantined — the payload survives).
    """

    source: str = ""
    ok_count: int = 0
    unparsed_frames: int = 0
    truncated_tail: bool = False
    records: list[QuarantinedRecord] = field(default_factory=list)

    def __bool__(self) -> bool:
        """True when anything was quarantined or the tail was lost."""
        return bool(self.records) or self.truncated_tail

    @classmethod
    def merged(
        cls,
        reports: "Iterable[QuarantineReport | None]",
        source: str = "merged",
    ) -> "QuarantineReport | None":
        """One report summing *reports* (Nones skipped); None when empty.

        A single surviving report is returned as-is so provenance
        (its ``source``) is preserved; merging only happens when there
        is genuinely more than one lenient load to combine.
        """
        kept = [report for report in reports if report is not None]
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        merged = cls(source=source)
        for report in kept:
            merged.ok_count += report.ok_count
            merged.unparsed_frames += report.unparsed_frames
            merged.truncated_tail = merged.truncated_tail or report.truncated_tail
            merged.records.extend(report.records)
        return merged

    @property
    def quarantined_count(self) -> int:
        return len(self.records)

    def record_ok(self, amount: int = 1) -> None:
        self.ok_count += amount
        count_records("ok", amount)

    def quarantine(
        self, index: int, offset: int, reason: str, detail: str, data: bytes = b""
    ) -> QuarantinedRecord:
        """File one malformed record; returns the quarantine entry."""
        entry = QuarantinedRecord(
            index=index, offset=offset, reason=reason, detail=detail, data=data
        )
        self.records.append(entry)
        count_records("quarantined")
        return entry

    def quarantine_tail(
        self, index: int, offset: int, reason: str, detail: str, data: bytes = b""
    ) -> QuarantinedRecord:
        """File trailing corruption: the prefix was salvaged, the rest lost."""
        entry = self.quarantine(index, offset, reason, detail, data)
        self.truncated_tail = True
        count_records("salvaged_tail")
        return entry

    def frame_unparsed(self, amount: int = 1) -> None:
        self.unparsed_frames += amount
        count_unparsed_frame(amount)

    def summary(self) -> str:
        """One-line human summary for CLI stderr output."""
        parts = [f"{self.ok_count} ok", f"{self.quarantined_count} quarantined"]
        if self.truncated_tail:
            parts.append("tail truncated")
        if self.unparsed_frames:
            parts.append(f"{self.unparsed_frames} frames unparsed")
        prefix = f"{self.source}: " if self.source else ""
        return prefix + ", ".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready image (run manifests, report attachments)."""
        return {
            "source": self.source,
            "ok_count": self.ok_count,
            "quarantined_count": self.quarantined_count,
            "unparsed_frames": self.unparsed_frames,
            "truncated_tail": self.truncated_tail,
            "records": [entry.to_dict() for entry in self.records],
        }
