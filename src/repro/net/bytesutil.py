"""Small helpers for working with raw packet bytes."""

from __future__ import annotations

import string

_PRINTABLE = frozenset(string.printable.encode("ascii")) - frozenset(b"\x0b\x0c")


def hexdump(data: bytes, width: int = 16) -> str:
    """Render *data* as a classic offset/hex/ASCII dump for debugging."""
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset : offset + width]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        asciipart = "".join(
            chr(b) if 0x20 <= b < 0x7F else "." for b in chunk
        )
        lines.append(f"{offset:08x}  {hexpart:<{width * 3}} {asciipart}")
    return "\n".join(lines)


def is_printable(data: bytes, threshold: float = 1.0) -> bool:
    """Return True if at least *threshold* of the bytes are printable ASCII."""
    if not data:
        return False
    printable = sum(1 for b in data if b in _PRINTABLE)
    return printable / len(data) >= threshold


def printable_ratio(data: bytes) -> float:
    """Fraction of bytes in *data* that are printable ASCII characters."""
    if not data:
        return 0.0
    return sum(1 for b in data if b in _PRINTABLE) / len(data)


def format_ipv4(addr: bytes) -> str:
    """Format a 4-byte big-endian address as dotted-quad text."""
    if len(addr) != 4:
        raise ValueError(f"IPv4 address must be 4 bytes, got {len(addr)}")
    return ".".join(str(b) for b in addr)


def parse_ipv4(text: str) -> bytes:
    """Parse dotted-quad text into 4 bytes."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    values = [int(p) for p in parts]
    if any(not 0 <= v <= 255 for v in values):
        raise ValueError(f"octet out of range in {text!r}")
    return bytes(values)


def format_mac(addr: bytes) -> str:
    """Format a 6-byte MAC address as colon-separated hex."""
    if len(addr) != 6:
        raise ValueError(f"MAC address must be 6 bytes, got {len(addr)}")
    return ":".join(f"{b:02x}" for b in addr)


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def shannon_entropy(data: bytes) -> float:
    """Shannon entropy of the byte distribution, in bits per byte (0..8)."""
    if not data:
        return 0.0
    import math

    counts: dict[int, int] = {}
    for b in data:
        counts[b] = counts.get(b, 0) + 1
    n = len(data)
    return -sum((c / n) * math.log2(c / n) for c in counts.values())
