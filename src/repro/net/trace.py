"""Trace abstraction and the paper's preprocessing step.

A :class:`Trace` is the unit of analysis: an ordered list of
application-layer :class:`TraceMessage` objects of (presumably) a single
protocol.  ``load_trace`` builds one from a pcap file; protocol generators
in :mod:`repro.protocols` build them directly.

Preprocessing (paper Section III-A) filters the capture to the desired
protocol and de-duplicates payloads: the method exploits variance in
message contents, so byte-identical duplicates carry no information.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.errors import QuarantineReport, count_unparsed_frame
from repro.net.packet import ParsedPacket, parse_ethernet_frame
from repro.net.pcap import LINKTYPE_ETHERNET, read_pcap
from repro.net.pcapng import read_pcapng

#: First four bytes of a pcapng file (the SHB block type, an
#: endianness-palindrome by design).
PCAPNG_MAGIC = b"\x0a\x0d\x0d\x0a"


@dataclass(frozen=True)
class TraceMessage:
    """One application-layer message plus its capture context.

    The addressing context is optional — link-layer protocols such as AWDL
    have none — and is consumed only by context-dependent baselines
    (FieldHunter), never by the clustering pipeline itself.
    """

    data: bytes
    timestamp: float = 0.0
    src_ip: bytes | None = None
    dst_ip: bytes | None = None
    src_port: int | None = None
    dst_port: int | None = None
    direction: str | None = None  # "request" / "response" when known
    extra: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.data)

    def with_data(self, data: bytes) -> "TraceMessage":
        return replace(self, data=data)


@dataclass
class Trace:
    """An ordered collection of messages of one protocol.

    ``quarantine`` is attached by :func:`load_trace` after a lenient
    load; derived traces (filter/truncate/preprocess results) do not
    carry it — it describes the original capture, not the view.
    """

    messages: list[TraceMessage]
    protocol: str = "unknown"
    quarantine: QuarantineReport | None = None

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(messages=self.messages[index], protocol=self.protocol)
        return self.messages[index]

    @property
    def total_bytes(self) -> int:
        """Total payload bytes across all messages (coverage denominator)."""
        return sum(len(m.data) for m in self.messages)

    def truncate(self, count: int) -> "Trace":
        """First *count* messages, as used to build the 100/1000-message sets."""
        return Trace(messages=self.messages[:count], protocol=self.protocol)

    def filter(self, predicate: Callable[[TraceMessage], bool]) -> "Trace":
        """Messages satisfying *predicate* (protocol filtering)."""
        return Trace(
            messages=[m for m in self.messages if predicate(m)], protocol=self.protocol
        )

    def deduplicate(self) -> "Trace":
        """Remove byte-identical payloads, keeping first occurrences."""
        return Trace(messages=deduplicate(self.messages), protocol=self.protocol)

    def preprocess(
        self,
        predicate: Callable[[TraceMessage], bool] | None = None,
        drop_empty: bool = True,
    ) -> "Trace":
        """The paper's preprocessing: filter, drop empties, de-duplicate."""
        messages: Iterable[TraceMessage] = self.messages
        if predicate is not None:
            messages = (m for m in messages if predicate(m))
        if drop_empty:
            messages = (m for m in messages if m.data)
        return Trace(messages=deduplicate(messages), protocol=self.protocol)


def deduplicate(messages: Iterable[TraceMessage]) -> list[TraceMessage]:
    """Stable de-duplication of messages by payload bytes."""
    seen: set[bytes] = set()
    unique = []
    for message in messages:
        if message.data in seen:
            continue
        seen.add(message.data)
        unique.append(message)
    return unique


def port_filter(*ports: int) -> Callable[[TraceMessage], bool]:
    """Predicate matching messages with any of *ports* as src or dst."""
    wanted = set(ports)
    return lambda m: m.src_port in wanted or m.dst_port in wanted


def load_trace(
    path: str | Path,
    protocol: str = "unknown",
    port: int | None = None,
    *,
    strict: bool = True,
    report: QuarantineReport | None = None,
) -> Trace:
    """Load a Trace from a pcap or pcapng capture file.

    The format is sniffed from the first four bytes.  Frames that do
    not parse down to a transport payload are kept with their raw link
    payload so nothing silently disappears (counted in the
    ``repro_ingest_frames_unparsed_total`` metric); pass *port* to
    filter to one UDP/TCP service.

    With ``strict=False`` malformed records are quarantined instead of
    raising (see :mod:`repro.errors`); the resulting
    :class:`~repro.errors.QuarantineReport` is attached to the returned
    trace as ``trace.quarantine``.
    """
    if report is None and not strict:
        report = QuarantineReport(source=str(path))
    with open(path, "rb") as stream:
        magic = stream.read(4)
    if magic == PCAPNG_MAGIC:
        interfaces, packets = read_pcapng(path, strict=strict, report=report)
        linktype = interfaces[0].linktype if interfaces else LINKTYPE_ETHERNET
    else:
        linktype, packets = read_pcap(path, strict=strict, report=report)
    messages = []
    for packet in packets:
        if linktype == LINKTYPE_ETHERNET:
            try:
                parsed: ParsedPacket = parse_ethernet_frame(packet.data)
            except ValueError:
                parsed = ParsedPacket(payload=packet.data)
                if report is not None:
                    report.frame_unparsed()
                else:
                    count_unparsed_frame()
        else:
            # Non-Ethernet linktypes carry the application payload directly
            # (the convention our generators use for AWDL / AU captures).
            parsed = ParsedPacket(payload=packet.data, link=f"linktype-{linktype}")
        messages.append(
            TraceMessage(
                data=parsed.payload,
                timestamp=packet.timestamp,
                src_ip=parsed.src_ip,
                dst_ip=parsed.dst_ip,
                src_port=parsed.src_port,
                dst_port=parsed.dst_port,
            )
        )
    trace = Trace(messages=messages, protocol=protocol)
    if port is not None:
        trace = trace.filter(port_filter(port))
    trace.quarantine = report
    return trace


def concat(traces: Sequence[Trace], protocol: str | None = None) -> Trace:
    """Concatenate traces preserving order.

    Quarantine reports from the inputs are merged into the result so
    lenient-load provenance survives concatenation.
    """
    messages: list[TraceMessage] = []
    for trace in traces:
        messages.extend(trace.messages)
    name = protocol if protocol is not None else (traces[0].protocol if traces else "unknown")
    quarantine = QuarantineReport.merged(
        (trace.quarantine for trace in traces), source="concat"
    )
    return Trace(messages=messages, protocol=name, quarantine=quarantine)
