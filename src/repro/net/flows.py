"""Bidirectional conversation tracking and session splitting.

Reassembly (:mod:`repro.net.reassembly`) produces *directional* flows —
one :class:`~repro.net.reassembly.FlowKey` per direction of a TCP
conversation.  State-machine inference needs the opposite view: the two
directions folded into one canonical :class:`ConversationKey`, the
conversation's messages ordered by capture time, and long captures split
into *sessions* at idle gaps so each session is one protocol exchange
(a DHCP DORA handshake, an SMB negotiate/session-setup, a DNS
query/response pair).

Addressing quirks handled here:

- **Wildcard addresses.**  DHCP clients send from ``0.0.0.0`` to the
  broadcast address and the server answers to broadcast, so the IP pair
  never matches across directions.  Wildcard IPs (all-zero, all-ones,
  or absent) degrade the key to its port pair, which is exactly the
  invariant both directions share (67 ↔ 68).
- **Direction.**  Generator traces carry ``direction`` on each message;
  captures reassembled from raw frames may not.  The port heuristic
  (well-known port, else the lower port, is the server) fills the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.net.trace import Trace, TraceMessage

#: Messages further apart than this (seconds) belong to different
#: sessions of the same conversation.  The synthetic generators keep
#: intra-exchange deltas under ~1.5 s and draw inter-exchange gaps from
#: an exponential with a 30 s mean, so 5 s cleanly separates exchanges.
DEFAULT_IDLE_TIMEOUT = 5.0

#: Ports below this are treated as well-known server ports by the
#: direction heuristic.
WELL_KNOWN_PORT_MAX = 1024


def _is_wildcard_ip(ip: bytes | None) -> bool:
    """True for absent, all-zero (unspecified) or all-ones (broadcast) IPs."""
    if ip is None:
        return True
    return all(b == 0 for b in ip) or all(b == 0xFF for b in ip)


@dataclass(frozen=True)
class Endpoint:
    """One side of a conversation: an (ip, port) pair.

    ``ip`` is ``None`` when the conversation is keyed by ports only
    (wildcard addressing, see module docstring).
    """

    ip: bytes | None = None
    port: int | None = None

    def __lt__(self, other: "Endpoint") -> bool:  # stable canonical order
        return self._sort_key() < other._sort_key()

    def _sort_key(self) -> tuple:
        return (self.ip or b"", -1 if self.port is None else self.port)


@dataclass(frozen=True)
class ConversationKey:
    """Canonical identifier for a bidirectional conversation.

    The two endpoints are stored in sorted order so both directions of
    a flow map to the same key.  Build one with :func:`conversation_key`
    (from addressing fields) or :meth:`from_flow` (from a directional
    :class:`~repro.net.reassembly.FlowKey`).
    """

    low: Endpoint
    high: Endpoint

    @classmethod
    def from_endpoints(cls, a: Endpoint, b: Endpoint) -> "ConversationKey":
        return cls(a, b) if a < b else cls(b, a)

    @classmethod
    def from_flow(cls, flow) -> "ConversationKey":
        """Key for a directional reassembly ``FlowKey``."""
        return conversation_key(
            flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port
        )

    @property
    def ports(self) -> tuple[int | None, int | None]:
        return (self.low.port, self.high.port)


def conversation_key(
    src_ip: bytes | None,
    dst_ip: bytes | None,
    src_port: int | None,
    dst_port: int | None,
) -> ConversationKey:
    """Canonical conversation key for one message's addressing fields.

    When either IP is a wildcard (unspecified / broadcast / absent) the
    key degrades to the port pair, so e.g. a DHCP request from
    ``0.0.0.0:68`` to ``255.255.255.255:67`` and the broadcast response
    from ``server:67`` land in the same conversation.
    """
    if _is_wildcard_ip(src_ip) or _is_wildcard_ip(dst_ip):
        src_ip = dst_ip = None
    return ConversationKey.from_endpoints(
        Endpoint(ip=src_ip, port=src_port), Endpoint(ip=dst_ip, port=dst_port)
    )


def server_port_of(key: ConversationKey) -> int | None:
    """The conversation's server-side port, by heuristic.

    A well-known port (< 1024) wins; with none or both well-known, the
    lower port is taken as the server (ephemeral client ports are drawn
    from the high range).
    """
    ports = [p for p in key.ports if p is not None]
    if not ports:
        return None
    well_known = [p for p in ports if p < WELL_KNOWN_PORT_MAX]
    if len(well_known) == 1:
        return well_known[0]
    return min(ports)


def classify_direction(message: TraceMessage, server_port: int | None) -> str:
    """"request" / "response" for *message*, trusting an explicit label.

    Falls back to the port heuristic: toward the server port is a
    request, from it a response.  Without any port information the
    message is called a request (the conservative default for
    state-machine symbols).
    """
    if message.direction in ("request", "response"):
        return message.direction
    if server_port is not None:
        if message.dst_port == server_port:
            return "request"
        if message.src_port == server_port:
            return "response"
    return "request"


@dataclass
class Session:
    """One contiguous exchange within a conversation.

    ``messages`` are ordered by capture timestamp; ``directions`` holds
    the per-message request/response classification in the same order.
    """

    key: ConversationKey
    messages: list[TraceMessage] = field(default_factory=list)
    directions: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages)

    @property
    def start_time(self) -> float:
        return self.messages[0].timestamp if self.messages else 0.0

    @property
    def end_time(self) -> float:
        return self.messages[-1].timestamp if self.messages else 0.0

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def pair_requests(self) -> list[tuple[TraceMessage, TraceMessage | None]]:
        """Greedy in-order request/response pairing.

        Each response is matched to the earliest still-unanswered
        request; requests that never see a response pair with ``None``.
        This is the UDP 5-tuple pairing — within one session the
        conversation key *is* the 5-tuple (minus direction), so order
        is the only remaining signal.
        """
        pairs: list[tuple[TraceMessage, TraceMessage | None]] = []
        pending: list[int] = []  # indexes into pairs awaiting a response
        for message, direction in zip(self.messages, self.directions):
            if direction == "request":
                pending.append(len(pairs))
                pairs.append((message, None))
            elif pending:
                index = pending.pop(0)
                pairs[index] = (pairs[index][0], message)
        return pairs


def sessions_from_messages(
    messages: Iterable[TraceMessage],
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
) -> list[Session]:
    """Group *messages* into per-conversation sessions.

    Messages are bucketed by canonical conversation key, ordered by
    timestamp within each conversation, and split into a new session
    whenever the gap to the previous message exceeds *idle_timeout*.
    The resulting sessions are returned ordered by start time (ties
    broken by key) so downstream consumers are deterministic.
    """
    buckets: dict[ConversationKey, list[TraceMessage]] = {}
    for message in messages:
        key = conversation_key(
            message.src_ip, message.dst_ip, message.src_port, message.dst_port
        )
        buckets.setdefault(key, []).append(message)

    sessions: list[Session] = []
    for key, bucket in buckets.items():
        bucket.sort(key=lambda m: m.timestamp)
        server_port = server_port_of(key)
        current: Session | None = None
        previous_time: float | None = None
        for message in bucket:
            if (
                current is None
                or previous_time is None
                or message.timestamp - previous_time > idle_timeout
            ):
                current = Session(key=key)
                sessions.append(current)
            current.messages.append(message)
            current.directions.append(classify_direction(message, server_port))
            previous_time = message.timestamp
    sessions.sort(key=lambda s: (s.start_time, s.key.low._sort_key(), s.key.high._sort_key()))
    return sessions


def sessions_from_trace(
    trace: Trace | Sequence[TraceMessage],
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
) -> list[Session]:
    """Session view of a trace (see :func:`sessions_from_messages`)."""
    messages = trace.messages if isinstance(trace, Trace) else trace
    return sessions_from_messages(messages, idle_timeout=idle_timeout)
