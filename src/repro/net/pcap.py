"""Classic libpcap capture file format (``.pcap``) reader and writer.

Implements the de-facto format described in the pcap(3) manual and the
IETF opsawg draft: a 24-byte global header followed by per-packet record
headers.  Both endiannesses and both timestamp resolutions (micro / nano)
are supported for reading; writing emits little-endian microsecond files,
which is what tcpdump produces on x86.

Both readers (:func:`read_pcap` and the streaming :func:`iter_pcap`)
share one record-iterator core, :func:`iter_pcap_records`, so they
accept exactly the same files.  Each reader takes a ``strict`` flag:

- ``strict=True`` (default) raises :class:`PcapError` on the first
  malformed record, byte-for-byte the historical behavior;
- ``strict=False`` salvages every record before the first corruption
  and files malformed ones into a
  :class:`~repro.errors.QuarantineReport` instead of raising.  Global
  header corruption (bad magic, unsupported version) still raises —
  without a valid header there is nothing to salvage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.errors import IngestError, QuarantineReport

MAGIC_MICRO_LE = 0xA1B2C3D4
MAGIC_NANO_LE = 0xA1B23C4D

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101
LINKTYPE_IEEE802_11 = 105
LINKTYPE_USER0 = 147  # we use USER0 for AU and USER1 for AWDL payload captures
LINKTYPE_USER1 = 148


class PcapError(IngestError):
    """Raised for malformed capture files."""


@dataclass(frozen=True)
class PcapPacket:
    """One captured packet: epoch timestamp (float seconds) + raw bytes."""

    timestamp: float
    data: bytes
    orig_len: int | None = None

    @property
    def captured_len(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class PcapHeader:
    """Decoded global header: byte order, resolution, limits, linktype."""

    endian: str
    resolution: float
    snaplen: int
    linktype: int
    version: tuple[int, int] = (2, 4)


def _read_exact(stream: BinaryIO, size: int, what: str) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise PcapError(f"truncated pcap: expected {size} bytes for {what}, got {len(data)}")
    return data


def read_pcap_header(stream: BinaryIO) -> PcapHeader:
    """Read and validate the 24-byte global header.

    Raises :class:`PcapError` on bad magic or an unsupported version —
    in lenient mode too, since a broken global header leaves no framing
    to salvage records with.
    """
    header = _read_exact(stream, 24, "global header")
    (magic,) = struct.unpack("<I", header[:4])
    if magic == MAGIC_MICRO_LE:
        endian, resolution = "<", 1e-6
    elif magic == MAGIC_NANO_LE:
        endian, resolution = "<", 1e-9
    else:
        (magic_be,) = struct.unpack(">I", header[:4])
        if magic_be == MAGIC_MICRO_LE:
            endian, resolution = ">", 1e-6
        elif magic_be == MAGIC_NANO_LE:
            endian, resolution = ">", 1e-9
        else:
            raise PcapError(f"bad magic number: 0x{magic:08x}")
    version_major, version_minor, _tz, _sigfigs, snaplen, linktype = struct.unpack(
        endian + "HHiIII", header[4:]
    )
    if version_major != 2:
        raise PcapError(f"unsupported pcap version {version_major}.{version_minor}")
    return PcapHeader(
        endian=endian,
        resolution=resolution,
        snaplen=snaplen,
        linktype=linktype,
        version=(version_major, version_minor),
    )


def iter_pcap_records(
    stream: BinaryIO,
    header: PcapHeader,
    *,
    strict: bool = True,
    report: QuarantineReport | None = None,
) -> Iterator[PcapPacket]:
    """Yield packets after the global header — the shared reader core.

    In lenient mode malformed records go into *report* (one is created
    internally when None, so metrics are still emitted): an over-snaplen
    record is skipped in place when its declared bytes are present, and
    corruption that destroys the framing (partial record header,
    truncated packet data) quarantines the tail and stops.
    """
    if report is None:
        report = QuarantineReport()
    offset = 24
    index = 0
    while True:
        record = stream.read(16)
        if not record:
            return
        if len(record) != 16:
            if strict:
                raise PcapError("truncated pcap: partial record header")
            report.quarantine_tail(
                index,
                offset,
                "partial-record-header",
                f"expected 16 bytes for record header, got {len(record)}",
                data=record,
            )
            return
        ts_sec, ts_frac, incl_len, orig_len = struct.unpack(header.endian + "IIII", record)
        if incl_len > header.snaplen and header.snaplen:
            if strict:
                raise PcapError(
                    f"record length {incl_len} exceeds snaplen {header.snaplen}"
                )
            data = stream.read(incl_len)
            if len(data) != incl_len:
                report.quarantine_tail(
                    index,
                    offset,
                    "over-snaplen-truncated",
                    f"record length {incl_len} exceeds snaplen {header.snaplen} "
                    f"and only {len(data)} bytes follow",
                    data=data,
                )
                return
            report.quarantine(
                index,
                offset,
                "over-snaplen",
                f"record length {incl_len} exceeds snaplen {header.snaplen}",
                data=data,
            )
            offset += 16 + incl_len
            index += 1
            continue
        data = stream.read(incl_len)
        if len(data) != incl_len:
            if strict:
                raise PcapError(
                    f"truncated pcap: expected {incl_len} bytes for packet data, "
                    f"got {len(data)}"
                )
            report.quarantine_tail(
                index,
                offset,
                "truncated-packet-data",
                f"expected {incl_len} bytes of packet data, got {len(data)}",
                data=data,
            )
            return
        report.record_ok()
        yield PcapPacket(
            timestamp=ts_sec + ts_frac * header.resolution, data=data, orig_len=orig_len
        )
        offset += 16 + incl_len
        index += 1


def read_pcap(
    path: str | Path,
    *,
    strict: bool = True,
    report: QuarantineReport | None = None,
) -> tuple[int, list[PcapPacket]]:
    """Read a pcap file, returning ``(linktype, packets)``."""
    with open(path, "rb") as stream:
        return read_pcap_stream(stream, strict=strict, report=report)


def read_pcap_stream(
    stream: BinaryIO,
    *,
    strict: bool = True,
    report: QuarantineReport | None = None,
) -> tuple[int, list[PcapPacket]]:
    """Read a pcap from an open binary stream."""
    header = read_pcap_header(stream)
    packets = list(iter_pcap_records(stream, header, strict=strict, report=report))
    return header.linktype, packets


def write_pcap(
    path: str | Path,
    packets: Iterable[PcapPacket],
    linktype: int = LINKTYPE_ETHERNET,
    snaplen: int = 262144,
) -> int:
    """Write packets to a little-endian microsecond pcap; returns the count."""
    with open(path, "wb") as stream:
        return write_pcap_stream(stream, packets, linktype=linktype, snaplen=snaplen)


def write_pcap_stream(
    stream: BinaryIO,
    packets: Iterable[PcapPacket],
    linktype: int = LINKTYPE_ETHERNET,
    snaplen: int = 262144,
) -> int:
    stream.write(struct.pack("<IHHiIII", MAGIC_MICRO_LE, 2, 4, 0, 0, snaplen, linktype))
    count = 0
    for packet in packets:
        if snaplen and len(packet.data) > snaplen:
            # Mirror the reader: it rejects over-snaplen records, so
            # refusing to write them keeps every file we emit readable.
            raise PcapError(
                f"packet {count} captured length {len(packet.data)} exceeds "
                f"snaplen {snaplen}"
            )
        ts_sec = int(packet.timestamp)
        ts_usec = int(round((packet.timestamp - ts_sec) * 1e6))
        if ts_usec >= 1_000_000:  # rounding spill-over at .9999995
            ts_sec += 1
            ts_usec -= 1_000_000
        orig_len = packet.orig_len if packet.orig_len is not None else len(packet.data)
        stream.write(struct.pack("<IIII", ts_sec, ts_usec, len(packet.data), orig_len))
        stream.write(packet.data)
        count += 1
    return count


def iter_pcap(
    path: str | Path,
    *,
    strict: bool = True,
    report: QuarantineReport | None = None,
) -> Iterator[PcapPacket]:
    """Stream packets from a pcap file one at a time.

    Shares :func:`iter_pcap_records` with :func:`read_pcap`, so both
    readers validate the version and snaplen identically.
    """
    with open(path, "rb") as stream:
        header = read_pcap_header(stream)
        yield from iter_pcap_records(stream, header, strict=strict, report=report)
