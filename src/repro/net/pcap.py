"""Classic libpcap capture file format (``.pcap``) reader and writer.

Implements the de-facto format described in the pcap(3) manual and the
IETF opsawg draft: a 24-byte global header followed by per-packet record
headers.  Both endiannesses and both timestamp resolutions (micro / nano)
are supported for reading; writing emits little-endian microsecond files,
which is what tcpdump produces on x86.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

MAGIC_MICRO_LE = 0xA1B2C3D4
MAGIC_NANO_LE = 0xA1B23C4D

LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101
LINKTYPE_IEEE802_11 = 105
LINKTYPE_USER0 = 147  # we use USER0 for AU and USER1 for AWDL payload captures
LINKTYPE_USER1 = 148


class PcapError(ValueError):
    """Raised for malformed capture files."""


@dataclass(frozen=True)
class PcapPacket:
    """One captured packet: epoch timestamp (float seconds) + raw bytes."""

    timestamp: float
    data: bytes
    orig_len: int | None = None

    @property
    def captured_len(self) -> int:
        return len(self.data)


def _read_exact(stream: BinaryIO, size: int, what: str) -> bytes:
    data = stream.read(size)
    if len(data) != size:
        raise PcapError(f"truncated pcap: expected {size} bytes for {what}, got {len(data)}")
    return data


def read_pcap(path: str | Path) -> tuple[int, list[PcapPacket]]:
    """Read a pcap file, returning ``(linktype, packets)``."""
    with open(path, "rb") as stream:
        return read_pcap_stream(stream)


def read_pcap_stream(stream: BinaryIO) -> tuple[int, list[PcapPacket]]:
    """Read a pcap from an open binary stream."""
    header = _read_exact(stream, 24, "global header")
    (magic,) = struct.unpack("<I", header[:4])
    if magic == MAGIC_MICRO_LE:
        endian, resolution = "<", 1e-6
    elif magic == MAGIC_NANO_LE:
        endian, resolution = "<", 1e-9
    else:
        (magic_be,) = struct.unpack(">I", header[:4])
        if magic_be == MAGIC_MICRO_LE:
            endian, resolution = ">", 1e-6
        elif magic_be == MAGIC_NANO_LE:
            endian, resolution = ">", 1e-9
        else:
            raise PcapError(f"bad magic number: 0x{magic:08x}")
    version_major, version_minor, _tz, _sigfigs, snaplen, linktype = struct.unpack(
        endian + "HHiIII", header[4:]
    )
    if version_major != 2:
        raise PcapError(f"unsupported pcap version {version_major}.{version_minor}")
    packets = []
    while True:
        record = stream.read(16)
        if not record:
            break
        if len(record) != 16:
            raise PcapError("truncated pcap: partial record header")
        ts_sec, ts_frac, incl_len, orig_len = struct.unpack(endian + "IIII", record)
        if incl_len > snaplen and snaplen:
            raise PcapError(f"record length {incl_len} exceeds snaplen {snaplen}")
        data = _read_exact(stream, incl_len, "packet data")
        packets.append(
            PcapPacket(timestamp=ts_sec + ts_frac * resolution, data=data, orig_len=orig_len)
        )
    return linktype, packets


def write_pcap(
    path: str | Path,
    packets: Iterable[PcapPacket],
    linktype: int = LINKTYPE_ETHERNET,
    snaplen: int = 262144,
) -> int:
    """Write packets to a little-endian microsecond pcap; returns the count."""
    with open(path, "wb") as stream:
        return write_pcap_stream(stream, packets, linktype=linktype, snaplen=snaplen)


def write_pcap_stream(
    stream: BinaryIO,
    packets: Iterable[PcapPacket],
    linktype: int = LINKTYPE_ETHERNET,
    snaplen: int = 262144,
) -> int:
    stream.write(struct.pack("<IHHiIII", MAGIC_MICRO_LE, 2, 4, 0, 0, snaplen, linktype))
    count = 0
    for packet in packets:
        ts_sec = int(packet.timestamp)
        ts_usec = int(round((packet.timestamp - ts_sec) * 1e6))
        if ts_usec >= 1_000_000:  # rounding spill-over at .9999995
            ts_sec += 1
            ts_usec -= 1_000_000
        orig_len = packet.orig_len if packet.orig_len is not None else len(packet.data)
        stream.write(struct.pack("<IIII", ts_sec, ts_usec, len(packet.data), orig_len))
        stream.write(packet.data)
        count += 1
    return count


def iter_pcap(path: str | Path) -> Iterator[PcapPacket]:
    """Stream packets from a pcap file one at a time."""
    with open(path, "rb") as stream:
        header = _read_exact(stream, 24, "global header")
        (magic,) = struct.unpack("<I", header[:4])
        if magic in (MAGIC_MICRO_LE, MAGIC_NANO_LE):
            endian = "<"
            resolution = 1e-6 if magic == MAGIC_MICRO_LE else 1e-9
        else:
            (magic_be,) = struct.unpack(">I", header[:4])
            if magic_be not in (MAGIC_MICRO_LE, MAGIC_NANO_LE):
                raise PcapError(f"bad magic number: 0x{magic:08x}")
            endian = ">"
            resolution = 1e-6 if magic_be == MAGIC_MICRO_LE else 1e-9
        while True:
            record = stream.read(16)
            if not record:
                return
            if len(record) != 16:
                raise PcapError("truncated pcap: partial record header")
            ts_sec, ts_frac, incl_len, orig_len = struct.unpack(endian + "IIII", record)
            data = _read_exact(stream, incl_len, "packet data")
            yield PcapPacket(
                timestamp=ts_sec + ts_frac * resolution, data=data, orig_len=orig_len
            )
