"""pcapng (next-generation capture) reader and writer.

Supports the block types needed for interchange with Wireshark-era
captures: Section Header (SHB), Interface Description (IDB), Enhanced
Packet (EPB), and Simple Packet (SPB).  Options are parsed and preserved
as raw (code, value) pairs.  Multiple interfaces per section are
supported; multiple sections concatenate their packets.

The reader takes a ``strict`` flag mirroring :mod:`repro.net.pcap`:
strict mode raises :class:`~repro.net.pcap.PcapError` on the first
malformed block, lenient mode (``strict=False``) quarantines it into a
:class:`~repro.errors.QuarantineReport` instead.  Errors local to one
well-framed block (short EPB/SPB/IDB body, unknown interface id, SPB
before any IDB, a disagreeing trailer length) quarantine that block and
keep going; errors that destroy the block framing (truncation, an
impossible block length) quarantine the tail and stop, salvaging every
packet read so far.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable

from repro.errors import QuarantineReport
from repro.net.pcap import PcapError, PcapPacket

BLOCK_SHB = 0x0A0D0D0A
BLOCK_IDB = 0x00000001
BLOCK_SPB = 0x00000003
BLOCK_EPB = 0x00000006

BYTE_ORDER_MAGIC = 0x1A2B3C4D


@dataclass(frozen=True)
class Interface:
    """One capture interface: linktype, snaplen, and timestamp resolution."""

    linktype: int
    snaplen: int
    ts_resolution: float = 1e-6


def _pad4(n: int) -> int:
    return (4 - n % 4) % 4


def _parse_options(data: bytes, endian: str) -> list[tuple[int, bytes]]:
    options = []
    offset = 0
    while offset + 4 <= len(data):
        code, length = struct.unpack(endian + "HH", data[offset : offset + 4])
        offset += 4
        if code == 0:  # opt_endofopt
            break
        value = data[offset : offset + length]
        offset += length + _pad4(length)
        options.append((code, value))
    return options


def _ts_resolution_from_options(options: list[tuple[int, bytes]]) -> float:
    for code, value in options:
        if code == 9 and len(value) >= 1:  # if_tsresol
            raw = value[0]
            if raw & 0x80:
                return 2.0 ** -(raw & 0x7F)
            return 10.0 ** -raw
    return 1e-6


def read_pcapng(
    path: str | Path,
    *,
    strict: bool = True,
    report: QuarantineReport | None = None,
) -> tuple[list[Interface], list[PcapPacket]]:
    """Read a pcapng file, returning ``(interfaces, packets)``.

    Packet timestamps are converted to float epoch seconds using each
    interface's declared resolution.
    """
    with open(path, "rb") as stream:
        return read_pcapng_stream(stream, strict=strict, report=report)


def read_pcapng_stream(
    stream: BinaryIO,
    *,
    strict: bool = True,
    report: QuarantineReport | None = None,
) -> tuple[list[Interface], list[PcapPacket]]:
    if report is None:
        report = QuarantineReport()
    interfaces: list[Interface] = []
    packets: list[PcapPacket] = []
    endian = "<"
    offset = 0
    index = 0

    def fail(reason: str, detail: str, data: bytes = b"") -> None:
        """Framing-destroying corruption: raise, or quarantine the tail."""
        if strict:
            raise PcapError(detail)
        report.quarantine_tail(index, offset, reason, detail, data=data)

    def skip(reason: str, detail: str, data: bytes = b"") -> None:
        """Block-local corruption: raise, or quarantine just this block."""
        if strict:
            raise PcapError(detail)
        report.quarantine(index, offset, reason, detail, data=data)

    while True:
        head = stream.read(8)
        if not head:
            break
        if len(head) != 8:
            fail(
                "partial-block-header",
                "truncated pcapng: partial block header",
                data=head,
            )
            break
        (block_type,) = struct.unpack(endian + "I", head[:4])
        if block_type == BLOCK_SHB:
            # Byte order may change per section; peek at the magic.
            magic_bytes = stream.read(4)
            if len(magic_bytes) != 4:
                fail("shb-no-magic", "truncated pcapng: missing byte-order magic")
                break
            (magic_le,) = struct.unpack("<I", magic_bytes)
            endian = "<" if magic_le == BYTE_ORDER_MAGIC else ">"
            (block_len,) = struct.unpack(endian + "I", head[4:])
            if block_len < 28:
                fail("shb-too-short", f"SHB too short: {block_len}")
                break
            body = stream.read(block_len - 12)
            if len(body) != block_len - 12:
                fail("shb-truncated", "truncated pcapng: SHB body", data=body)
                break
            offset += block_len
            index += 1
            continue
        (block_len,) = struct.unpack(endian + "I", head[4:])
        if block_len < 12 or block_len % 4:
            fail("bad-block-length", f"bad block length {block_len}")
            break
        body = stream.read(block_len - 12)
        if len(body) != block_len - 12:
            fail("block-truncated", "truncated pcapng: block body", data=body)
            break
        trailer = stream.read(4)
        if len(trailer) != 4:
            fail("trailer-truncated", "truncated pcapng: block trailer", data=body)
            break
        (trailer_len,) = struct.unpack(endian + "I", trailer)
        if trailer_len != block_len:
            # The leading length already framed the block, so lenient
            # mode can drop just this block and stay synchronized.
            skip(
                "trailer-mismatch",
                f"block length mismatch: {block_len} != {trailer_len}",
                data=body,
            )
            offset += block_len
            index += 1
            continue
        if block_type == BLOCK_IDB:
            if len(body) < 8:
                skip("idb-short", f"IDB body too short: {len(body)} bytes", data=body)
                offset += block_len
                index += 1
                continue
            linktype, _reserved, snaplen = struct.unpack(endian + "HHI", body[:8])
            options = _parse_options(body[8:], endian)
            interfaces.append(
                Interface(
                    linktype=linktype,
                    snaplen=snaplen,
                    ts_resolution=_ts_resolution_from_options(options),
                )
            )
        elif block_type == BLOCK_EPB:
            if len(body) < 20:
                skip("epb-short", f"EPB body too short: {len(body)} bytes", data=body)
                offset += block_len
                index += 1
                continue
            iface_id, ts_high, ts_low, cap_len, orig_len = struct.unpack(
                endian + "IIIII", body[:20]
            )
            if iface_id >= len(interfaces):
                skip(
                    "epb-unknown-interface",
                    f"EPB references unknown interface {iface_id}",
                    data=body[20 : 20 + cap_len],
                )
                offset += block_len
                index += 1
                continue
            data = body[20 : 20 + cap_len]
            if len(data) != cap_len:
                skip(
                    "epb-short-data",
                    "EPB captured data shorter than declared",
                    data=data,
                )
                offset += block_len
                index += 1
                continue
            resolution = interfaces[iface_id].ts_resolution
            timestamp = ((ts_high << 32) | ts_low) * resolution
            packets.append(PcapPacket(timestamp=timestamp, data=data, orig_len=orig_len))
            report.record_ok()
        elif block_type == BLOCK_SPB:
            if not interfaces:
                skip(
                    "spb-before-idb",
                    "SPB before any interface description",
                    data=body[4:],
                )
                offset += block_len
                index += 1
                continue
            if len(body) < 4:
                skip("spb-short", f"SPB body too short: {len(body)} bytes", data=body)
                offset += block_len
                index += 1
                continue
            (orig_len,) = struct.unpack(endian + "I", body[:4])
            cap_len = min(orig_len, interfaces[0].snaplen or orig_len)
            data = body[4 : 4 + cap_len]
            packets.append(PcapPacket(timestamp=0.0, data=data, orig_len=orig_len))
            report.record_ok()
        # Unknown block types (NRB, ISB, custom) are skipped by design.
        offset += block_len
        index += 1
    return interfaces, packets


def write_pcapng(
    path: str | Path,
    packets: Iterable[PcapPacket],
    linktype: int = 1,
    snaplen: int = 262144,
) -> int:
    """Write packets to a single-interface little-endian pcapng file."""
    with open(path, "wb") as stream:
        return write_pcapng_stream(stream, packets, linktype=linktype, snaplen=snaplen)


def _write_block(stream: BinaryIO, block_type: int, body: bytes) -> None:
    padding = b"\x00" * _pad4(len(body))
    total = 12 + len(body) + len(padding)
    stream.write(struct.pack("<II", block_type, total))
    stream.write(body + padding)
    stream.write(struct.pack("<I", total))


def write_pcapng_stream(
    stream: BinaryIO,
    packets: Iterable[PcapPacket],
    linktype: int = 1,
    snaplen: int = 262144,
) -> int:
    shb_body = struct.pack("<IHHq", BYTE_ORDER_MAGIC, 1, 0, -1)
    _write_block(stream, BLOCK_SHB, shb_body)
    idb_body = struct.pack("<HHI", linktype, 0, snaplen)
    _write_block(stream, BLOCK_IDB, idb_body)
    count = 0
    for packet in packets:
        if snaplen and len(packet.data) > snaplen:
            raise PcapError(
                f"packet {count} captured length {len(packet.data)} exceeds "
                f"snaplen {snaplen}"
            )
        ticks = int(round(packet.timestamp * 1e6))
        orig_len = packet.orig_len if packet.orig_len is not None else len(packet.data)
        epb_body = (
            struct.pack(
                "<IIIII",
                0,
                (ticks >> 32) & 0xFFFFFFFF,
                ticks & 0xFFFFFFFF,
                len(packet.data),
                orig_len,
            )
            + packet.data
        )
        _write_block(stream, BLOCK_EPB, epb_body)
        count += 1
    return count
