"""pcapng (next-generation capture) reader and writer.

Supports the block types needed for interchange with Wireshark-era
captures: Section Header (SHB), Interface Description (IDB), Enhanced
Packet (EPB), and Simple Packet (SPB).  Options are parsed and preserved
as raw (code, value) pairs.  Multiple interfaces per section are
supported; multiple sections concatenate their packets.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable

from repro.net.pcap import PcapError, PcapPacket

BLOCK_SHB = 0x0A0D0D0A
BLOCK_IDB = 0x00000001
BLOCK_SPB = 0x00000003
BLOCK_EPB = 0x00000006

BYTE_ORDER_MAGIC = 0x1A2B3C4D


@dataclass(frozen=True)
class Interface:
    """One capture interface: linktype, snaplen, and timestamp resolution."""

    linktype: int
    snaplen: int
    ts_resolution: float = 1e-6


def _pad4(n: int) -> int:
    return (4 - n % 4) % 4


def _parse_options(data: bytes, endian: str) -> list[tuple[int, bytes]]:
    options = []
    offset = 0
    while offset + 4 <= len(data):
        code, length = struct.unpack(endian + "HH", data[offset : offset + 4])
        offset += 4
        if code == 0:  # opt_endofopt
            break
        value = data[offset : offset + length]
        offset += length + _pad4(length)
        options.append((code, value))
    return options


def _ts_resolution_from_options(options: list[tuple[int, bytes]]) -> float:
    for code, value in options:
        if code == 9 and len(value) >= 1:  # if_tsresol
            raw = value[0]
            if raw & 0x80:
                return 2.0 ** -(raw & 0x7F)
            return 10.0 ** -raw
    return 1e-6


def read_pcapng(path: str | Path) -> tuple[list[Interface], list[PcapPacket]]:
    """Read a pcapng file, returning ``(interfaces, packets)``.

    Packet timestamps are converted to float epoch seconds using each
    interface's declared resolution.
    """
    with open(path, "rb") as stream:
        return read_pcapng_stream(stream)


def read_pcapng_stream(stream: BinaryIO) -> tuple[list[Interface], list[PcapPacket]]:
    interfaces: list[Interface] = []
    packets: list[PcapPacket] = []
    endian = "<"
    while True:
        head = stream.read(8)
        if not head:
            break
        if len(head) != 8:
            raise PcapError("truncated pcapng: partial block header")
        (block_type,) = struct.unpack(endian + "I", head[:4])
        if block_type == BLOCK_SHB:
            # Byte order may change per section; peek at the magic.
            magic_bytes = stream.read(4)
            if len(magic_bytes) != 4:
                raise PcapError("truncated pcapng: missing byte-order magic")
            (magic_le,) = struct.unpack("<I", magic_bytes)
            endian = "<" if magic_le == BYTE_ORDER_MAGIC else ">"
            (block_len,) = struct.unpack(endian + "I", head[4:])
            if block_len < 28:
                raise PcapError(f"SHB too short: {block_len}")
            body = stream.read(block_len - 12)
            if len(body) != block_len - 12:
                raise PcapError("truncated pcapng: SHB body")
            continue
        (block_len,) = struct.unpack(endian + "I", head[4:])
        if block_len < 12 or block_len % 4:
            raise PcapError(f"bad block length {block_len}")
        body = stream.read(block_len - 12)
        if len(body) != block_len - 12:
            raise PcapError("truncated pcapng: block body")
        trailer = stream.read(4)
        if len(trailer) != 4:
            raise PcapError("truncated pcapng: block trailer")
        (trailer_len,) = struct.unpack(endian + "I", trailer)
        if trailer_len != block_len:
            raise PcapError(f"block length mismatch: {block_len} != {trailer_len}")
        if block_type == BLOCK_IDB:
            linktype, _reserved, snaplen = struct.unpack(endian + "HHI", body[:8])
            options = _parse_options(body[8:], endian)
            interfaces.append(
                Interface(
                    linktype=linktype,
                    snaplen=snaplen,
                    ts_resolution=_ts_resolution_from_options(options),
                )
            )
        elif block_type == BLOCK_EPB:
            iface_id, ts_high, ts_low, cap_len, orig_len = struct.unpack(
                endian + "IIIII", body[:20]
            )
            if iface_id >= len(interfaces):
                raise PcapError(f"EPB references unknown interface {iface_id}")
            data = body[20 : 20 + cap_len]
            if len(data) != cap_len:
                raise PcapError("EPB captured data shorter than declared")
            resolution = interfaces[iface_id].ts_resolution
            timestamp = ((ts_high << 32) | ts_low) * resolution
            packets.append(PcapPacket(timestamp=timestamp, data=data, orig_len=orig_len))
        elif block_type == BLOCK_SPB:
            if not interfaces:
                raise PcapError("SPB before any interface description")
            (orig_len,) = struct.unpack(endian + "I", body[:4])
            cap_len = min(orig_len, interfaces[0].snaplen or orig_len)
            data = body[4 : 4 + cap_len]
            packets.append(PcapPacket(timestamp=0.0, data=data, orig_len=orig_len))
        # Unknown block types (NRB, ISB, custom) are skipped by design.
    return interfaces, packets


def write_pcapng(
    path: str | Path,
    packets: Iterable[PcapPacket],
    linktype: int = 1,
    snaplen: int = 262144,
) -> int:
    """Write packets to a single-interface little-endian pcapng file."""
    with open(path, "wb") as stream:
        return write_pcapng_stream(stream, packets, linktype=linktype, snaplen=snaplen)


def _write_block(stream: BinaryIO, block_type: int, body: bytes) -> None:
    padding = b"\x00" * _pad4(len(body))
    total = 12 + len(body) + len(padding)
    stream.write(struct.pack("<II", block_type, total))
    stream.write(body + padding)
    stream.write(struct.pack("<I", total))


def write_pcapng_stream(
    stream: BinaryIO,
    packets: Iterable[PcapPacket],
    linktype: int = 1,
    snaplen: int = 262144,
) -> int:
    shb_body = struct.pack("<IHHq", BYTE_ORDER_MAGIC, 1, 0, -1)
    _write_block(stream, BLOCK_SHB, shb_body)
    idb_body = struct.pack("<HHI", linktype, 0, snaplen)
    _write_block(stream, BLOCK_IDB, idb_body)
    count = 0
    for packet in packets:
        ticks = int(round(packet.timestamp * 1e6))
        orig_len = packet.orig_len if packet.orig_len is not None else len(packet.data)
        epb_body = (
            struct.pack(
                "<IIIII",
                0,
                (ticks >> 32) & 0xFFFFFFFF,
                ticks & 0xFFFFFFFF,
                len(packet.data),
                orig_len,
            )
            + packet.data
        )
        _write_block(stream, BLOCK_EPB, epb_body)
        count += 1
    return count
