"""Minimal packet-layer parsing: Ethernet, IPv4, IPv6, UDP, TCP.

The reproduction only needs enough of the stack to (1) carry synthetic
application payloads through realistic encapsulation and (2) recover the
payload plus addressing context (for FieldHunter, which correlates field
values with source/destination addresses).  Each layer is a small frozen
dataclass with ``parse``/``build`` round-trip support.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.bytesutil import internet_checksum

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
IPPROTO_TCP = 6
IPPROTO_UDP = 17


class PacketError(ValueError):
    """Raised when a packet cannot be parsed."""


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame."""

    dst: bytes
    src: bytes
    ethertype: int
    payload: bytes

    def build(self) -> bytes:
        if len(self.dst) != 6 or len(self.src) != 6:
            raise PacketError("MAC addresses must be 6 bytes")
        return self.dst + self.src + struct.pack("!H", self.ethertype) + self.payload

    @classmethod
    def parse(cls, data: bytes) -> "EthernetFrame":
        if len(data) < 14:
            raise PacketError(f"Ethernet frame too short: {len(data)} bytes")
        dst, src = data[0:6], data[6:12]
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype, payload=data[14:])


@dataclass(frozen=True)
class IPv4Packet:
    """An IPv4 packet (options unsupported: IHL fixed at 5)."""

    src: bytes
    dst: bytes
    protocol: int
    payload: bytes
    ttl: int = 64
    identification: int = 0
    dscp: int = 0

    HEADER_LEN = 20

    def build(self) -> bytes:
        total_length = self.HEADER_LEN + len(self.payload)
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,
            self.dscp,
            total_length,
            self.identification,
            0,  # flags / fragment offset
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src,
            self.dst,
        )
        checksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", checksum) + header[12:]
        return header + self.payload

    @classmethod
    def parse(cls, data: bytes) -> "IPv4Packet":
        if len(data) < cls.HEADER_LEN:
            raise PacketError(f"IPv4 packet too short: {len(data)} bytes")
        version_ihl = data[0]
        version = version_ihl >> 4
        ihl = (version_ihl & 0x0F) * 4
        if version != 4:
            raise PacketError(f"not IPv4 (version={version})")
        if ihl < cls.HEADER_LEN or len(data) < ihl:
            raise PacketError(f"bad IHL: {ihl}")
        (total_length,) = struct.unpack("!H", data[2:4])
        if total_length < ihl or total_length > len(data):
            raise PacketError(f"bad total length: {total_length}")
        return cls(
            src=data[12:16],
            dst=data[16:20],
            protocol=data[9],
            payload=data[ihl:total_length],
            ttl=data[8],
            identification=struct.unpack("!H", data[4:6])[0],
            dscp=data[1],
        )


@dataclass(frozen=True)
class IPv6Packet:
    """An IPv6 packet without extension headers."""

    src: bytes
    dst: bytes
    next_header: int
    payload: bytes
    hop_limit: int = 64

    HEADER_LEN = 40

    def build(self) -> bytes:
        header = struct.pack(
            "!IHBB16s16s",
            6 << 28,
            len(self.payload),
            self.next_header,
            self.hop_limit,
            self.src,
            self.dst,
        )
        return header + self.payload

    @classmethod
    def parse(cls, data: bytes) -> "IPv6Packet":
        if len(data) < cls.HEADER_LEN:
            raise PacketError(f"IPv6 packet too short: {len(data)} bytes")
        (vtf,) = struct.unpack("!I", data[0:4])
        if vtf >> 28 != 6:
            raise PacketError(f"not IPv6 (version={vtf >> 28})")
        (payload_len,) = struct.unpack("!H", data[4:6])
        if cls.HEADER_LEN + payload_len > len(data):
            raise PacketError("IPv6 payload length exceeds packet")
        return cls(
            src=data[8:24],
            dst=data[24:40],
            next_header=data[6],
            payload=data[cls.HEADER_LEN : cls.HEADER_LEN + payload_len],
            hop_limit=data[7],
        )


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram (checksum emitted as 0: optional over IPv4)."""

    src_port: int
    dst_port: int
    payload: bytes

    HEADER_LEN = 8

    def build(self) -> bytes:
        length = self.HEADER_LEN + len(self.payload)
        return struct.pack("!HHHH", self.src_port, self.dst_port, length, 0) + self.payload

    @classmethod
    def parse(cls, data: bytes) -> "UdpDatagram":
        if len(data) < cls.HEADER_LEN:
            raise PacketError(f"UDP datagram too short: {len(data)} bytes")
        src_port, dst_port, length, _checksum = struct.unpack("!HHHH", data[:8])
        if length < cls.HEADER_LEN or length > len(data):
            raise PacketError(f"bad UDP length: {length}")
        return cls(src_port=src_port, dst_port=dst_port, payload=data[8:length])


@dataclass(frozen=True)
class TcpSegment:
    """A TCP segment with a fixed 20-byte header (no options)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload: bytes
    window: int = 65535

    HEADER_LEN = 20

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    def build(self) -> bytes:
        return (
            struct.pack(
                "!HHIIBBHHH",
                self.src_port,
                self.dst_port,
                self.seq,
                self.ack,
                5 << 4,  # data offset
                self.flags,
                self.window,
                0,  # checksum (not validated by our reader)
                0,  # urgent pointer
            )
            + self.payload
        )

    @classmethod
    def parse(cls, data: bytes) -> "TcpSegment":
        if len(data) < cls.HEADER_LEN:
            raise PacketError(f"TCP segment too short: {len(data)} bytes")
        (src_port, dst_port, seq, ack, offset_byte, flags, window, _cs, _urg) = struct.unpack(
            "!HHIIBBHHH", data[:20]
        )
        data_offset = (offset_byte >> 4) * 4
        if data_offset < cls.HEADER_LEN or data_offset > len(data):
            raise PacketError(f"bad TCP data offset: {data_offset}")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload=data[data_offset:],
            window=window,
        )


@dataclass(frozen=True)
class ParsedPacket:
    """Fully parsed encapsulation context for one captured packet.

    ``payload`` is the application-layer payload the inference pipeline
    consumes.  Addressing fields are None for link layers without IP
    (e.g., AWDL action frames), which is exactly the situation in which
    FieldHunter's context-dependent rules become inapplicable.
    """

    payload: bytes
    src_ip: bytes | None = None
    dst_ip: bytes | None = None
    src_port: int | None = None
    dst_port: int | None = None
    transport: str | None = None
    link: str = "ethernet"
    extra: dict = field(default_factory=dict)


def parse_ethernet_frame(data: bytes) -> ParsedPacket:
    """Parse an Ethernet frame down to the application payload.

    Unknown ethertypes and transports degrade gracefully: the remaining
    bytes become the payload with whatever context was recovered so far.
    """
    frame = EthernetFrame.parse(data)
    if frame.ethertype == ETHERTYPE_IPV4:
        ip: IPv4Packet | IPv6Packet = IPv4Packet.parse(frame.payload)
    elif frame.ethertype == ETHERTYPE_IPV6:
        ip = IPv6Packet.parse(frame.payload)
    else:
        return ParsedPacket(payload=frame.payload, link="ethernet")
    protocol = ip.protocol if isinstance(ip, IPv4Packet) else ip.next_header
    if protocol == IPPROTO_UDP:
        udp = UdpDatagram.parse(ip.payload)
        return ParsedPacket(
            payload=udp.payload,
            src_ip=ip.src,
            dst_ip=ip.dst,
            src_port=udp.src_port,
            dst_port=udp.dst_port,
            transport="udp",
        )
    if protocol == IPPROTO_TCP:
        tcp = TcpSegment.parse(ip.payload)
        return ParsedPacket(
            payload=tcp.payload,
            src_ip=ip.src,
            dst_ip=ip.dst,
            src_port=tcp.src_port,
            dst_port=tcp.dst_port,
            transport="tcp",
        )
    return ParsedPacket(payload=ip.payload, src_ip=ip.src, dst_ip=ip.dst)


def build_udp_ipv4_frame(
    payload: bytes,
    src_ip: bytes,
    dst_ip: bytes,
    src_port: int,
    dst_port: int,
    src_mac: bytes = b"\x02\x00\x00\x00\x00\x01",
    dst_mac: bytes = b"\x02\x00\x00\x00\x00\x02",
    identification: int = 0,
) -> bytes:
    """Wrap *payload* in UDP/IPv4/Ethernet, returning raw frame bytes."""
    udp = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
    ip = IPv4Packet(
        src=src_ip,
        dst=dst_ip,
        protocol=IPPROTO_UDP,
        payload=udp.build(),
        identification=identification,
    )
    frame = EthernetFrame(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4, payload=ip.build())
    return frame.build()


def build_udp_ipv6_frame(
    payload: bytes,
    src_ip: bytes,
    dst_ip: bytes,
    src_port: int,
    dst_port: int,
    src_mac: bytes = b"\x02\x00\x00\x00\x00\x01",
    dst_mac: bytes = b"\x02\x00\x00\x00\x00\x02",
) -> bytes:
    """Wrap *payload* in UDP/IPv6/Ethernet, returning raw frame bytes."""
    udp = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
    ip = IPv6Packet(src=src_ip, dst=dst_ip, next_header=IPPROTO_UDP, payload=udp.build())
    frame = EthernetFrame(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV6, payload=ip.build())
    return frame.build()


def build_tcp_ipv6_frame(
    payload: bytes,
    src_ip: bytes,
    dst_ip: bytes,
    src_port: int,
    dst_port: int,
    seq: int = 0,
    ack: int = 0,
    flags: int = TcpSegment.PSH | TcpSegment.ACK,
    src_mac: bytes = b"\x02\x00\x00\x00\x00\x01",
    dst_mac: bytes = b"\x02\x00\x00\x00\x00\x02",
) -> bytes:
    """Wrap *payload* in TCP/IPv6/Ethernet, returning raw frame bytes."""
    tcp = TcpSegment(
        src_port=src_port, dst_port=dst_port, seq=seq, ack=ack, flags=flags, payload=payload
    )
    ip = IPv6Packet(src=src_ip, dst=dst_ip, next_header=IPPROTO_TCP, payload=tcp.build())
    frame = EthernetFrame(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV6, payload=ip.build())
    return frame.build()


def build_tcp_ipv4_frame(
    payload: bytes,
    src_ip: bytes,
    dst_ip: bytes,
    src_port: int,
    dst_port: int,
    seq: int = 0,
    ack: int = 0,
    flags: int = TcpSegment.PSH | TcpSegment.ACK,
    src_mac: bytes = b"\x02\x00\x00\x00\x00\x01",
    dst_mac: bytes = b"\x02\x00\x00\x00\x00\x02",
) -> bytes:
    """Wrap *payload* in TCP/IPv4/Ethernet, returning raw frame bytes."""
    tcp = TcpSegment(
        src_port=src_port, dst_port=dst_port, seq=seq, ack=ack, flags=flags, payload=payload
    )
    ip = IPv4Packet(src=src_ip, dst=dst_ip, protocol=IPPROTO_TCP, payload=tcp.build())
    frame = EthernetFrame(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4, payload=ip.build())
    return frame.build()
