"""Network substrate: pcap/pcapng I/O, packet-layer parsing, and traces.

This package replaces external capture tooling (scapy, Wireshark) for the
reproduction.  It provides:

- :mod:`repro.net.pcap` / :mod:`repro.net.pcapng` — capture file formats,
- :mod:`repro.net.packet` — Ethernet/IPv4/IPv6/UDP/TCP header parsing,
- :mod:`repro.net.trace` — the :class:`~repro.net.trace.Trace` abstraction
  consumed by the inference pipeline, including the paper's preprocessing
  step (protocol filtering and payload de-duplication),
- :mod:`repro.net.reassembly` — TCP stream reassembly and NBSS framing,
- :mod:`repro.net.flows` — bidirectional conversation tracking and
  idle-gap session splitting for state-machine inference.
"""

from repro.errors import IngestError, QuarantinedRecord, QuarantineReport
from repro.net.flows import (
    ConversationKey,
    Endpoint,
    Session,
    conversation_key,
    sessions_from_trace,
)
from repro.net.packet import (
    EthernetFrame,
    IPv4Packet,
    IPv6Packet,
    ParsedPacket,
    TcpSegment,
    UdpDatagram,
    parse_ethernet_frame,
)
from repro.net.pcap import PcapError, PcapPacket, read_pcap, write_pcap
from repro.net.pcapng import read_pcapng, write_pcapng
from repro.net.trace import Trace, TraceMessage, deduplicate, load_trace

__all__ = [
    "ConversationKey",
    "Endpoint",
    "EthernetFrame",
    "IPv4Packet",
    "IPv6Packet",
    "IngestError",
    "ParsedPacket",
    "PcapError",
    "PcapPacket",
    "QuarantineReport",
    "QuarantinedRecord",
    "Session",
    "TcpSegment",
    "Trace",
    "TraceMessage",
    "UdpDatagram",
    "conversation_key",
    "deduplicate",
    "load_trace",
    "parse_ethernet_frame",
    "read_pcap",
    "sessions_from_trace",
    "read_pcapng",
    "write_pcap",
    "write_pcapng",
]
