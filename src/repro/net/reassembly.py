"""TCP stream reassembly and NBSS message splitting.

Real SMB captures arrive as TCP segments, not application messages.
This module rebuilds per-direction byte streams from captured segments
(ordering by sequence number, dropping retransmitted overlap) and
splits NBSS-framed streams (SMB's 4-byte length framing) back into the
application messages the inference pipeline consumes.

Reassembly preserves the information session tracking
(:mod:`repro.net.flows`) needs: both IP versions reach the TCP layer,
sequence numbers are handled modulo 2**32 relative to the first seen
sequence (long streams wrap), and every reassembled message carries the
timestamp of the segment that delivered its first byte — not the flow's
first timestamp — so interleaved request/response ordering survives.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.net.packet import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    IPPROTO_TCP,
    EthernetFrame,
    IPv4Packet,
    IPv6Packet,
    TcpSegment,
)
from repro.net.trace import Trace, TraceMessage

#: TCP sequence numbers live in a 32-bit space.
SEQ_MODULUS = 1 << 32
#: Relative offsets at or past this are interpreted as *before* the
#: base sequence (late retransmissions of pre-capture data), not as a
#: 2 GiB jump forward.
_SEQ_HALF = SEQ_MODULUS >> 1


@dataclass(frozen=True)
class FlowKey:
    """One direction of a TCP conversation."""

    src_ip: bytes
    dst_ip: bytes
    src_port: int
    dst_port: int


@dataclass
class StreamBuffer:
    """Sequence-ordered reassembly buffer for one flow direction.

    Chunks are keyed by their offset *relative to* ``base_seq`` (the
    first sequence number seen), computed modulo 2**32 so streams that
    wrap the 32-bit sequence space stay contiguous.  Each chunk keeps
    the capture timestamp of the segment that delivered it, so callers
    can recover when any stream offset first arrived
    (:meth:`timestamp_at`).
    """

    base_seq: int | None = None
    chunks: dict[int, bytes] = field(default_factory=dict)  # rel offset -> payload
    chunk_times: dict[int, float] = field(default_factory=dict)  # rel offset -> ts
    first_timestamp: float = 0.0

    def _relative(self, seq: int) -> int | None:
        """Offset of *seq* relative to base, or None when before base."""
        rel = (seq - self.base_seq) % SEQ_MODULUS
        if rel >= _SEQ_HALF:
            return None  # a (re)transmission from before the capture began
        return rel

    def add(self, seq: int, payload: bytes, timestamp: float) -> None:
        if not payload:
            return
        if self.base_seq is None:
            self.base_seq = seq % SEQ_MODULUS
            self.first_timestamp = timestamp
        rel = self._relative(seq)
        if rel is None:
            return
        existing = self.chunks.get(rel)
        if existing is None:
            self.chunks[rel] = payload
            self.chunk_times[rel] = timestamp
        else:
            if len(payload) > len(existing):
                self.chunks[rel] = payload
            # The offset's bytes were first on the wire at the earliest
            # delivery, whichever retransmission's payload dominates.
            self.chunk_times[rel] = min(self.chunk_times[rel], timestamp)

    def assemble(self) -> bytes:
        """Contiguous stream bytes from the base sequence onward.

        Overlapping retransmissions are dominated by the longest chunk at
        each offset; a gap (lost segment not captured) truncates the
        stream at the gap, which is the safe behaviour for inference.
        """
        if self.base_seq is None:
            return b""
        out = bytearray()
        expected = 0
        for rel in sorted(self.chunks):
            payload = self.chunks[rel]
            if rel > expected:
                break  # gap: stop rather than fabricate bytes
            skip = expected - rel
            if skip < len(payload):
                out += payload[skip:]
                expected = rel + len(payload)
        return bytes(out)

    def timestamp_at(self, offset: int) -> float:
        """Capture time of the segment that delivered stream *offset*.

        Falls back to ``first_timestamp`` for an empty buffer or an
        offset past the assembled stream.
        """
        if not self.chunks:
            return self.first_timestamp
        starts = sorted(self.chunks)
        index = bisect_right(starts, offset) - 1
        if index < 0:
            return self.first_timestamp
        rel = starts[index]
        if offset < rel + len(self.chunks[rel]):
            return self.chunk_times[rel]
        return self.first_timestamp


def _parse_tcp(raw: bytes) -> tuple[bytes, bytes, TcpSegment] | None:
    """(src_ip, dst_ip, tcp) for a TCP-bearing Ethernet frame, else None.

    Dispatches on the ethertype so IPv6 TCP flows reassemble exactly
    like IPv4 ones (they used to be dropped silently).
    """
    try:
        frame = EthernetFrame.parse(raw)
        if frame.ethertype == ETHERTYPE_IPV4:
            ip4 = IPv4Packet.parse(frame.payload)
            if ip4.protocol != IPPROTO_TCP:
                return None
            return ip4.src, ip4.dst, TcpSegment.parse(ip4.payload)
        if frame.ethertype == ETHERTYPE_IPV6:
            ip6 = IPv6Packet.parse(frame.payload)
            if ip6.next_header != IPPROTO_TCP:
                return None
            return ip6.src, ip6.dst, TcpSegment.parse(ip6.payload)
    except ValueError:
        return None
    return None


def reassemble_streams(
    frames: list[tuple[float, bytes]],
) -> dict[FlowKey, StreamBuffer]:
    """Group raw Ethernet frames into per-direction TCP stream buffers."""
    streams: dict[FlowKey, StreamBuffer] = {}
    for timestamp, raw in frames:
        parsed = _parse_tcp(raw)
        if parsed is None:
            continue
        src_ip, dst_ip, tcp = parsed
        key = FlowKey(
            src_ip=src_ip, dst_ip=dst_ip, src_port=tcp.src_port, dst_port=tcp.dst_port
        )
        streams.setdefault(key, StreamBuffer()).add(tcp.seq, tcp.payload, timestamp)
    return streams


def split_nbss_messages(stream: bytes) -> list[bytes]:
    """Split an NBSS-framed stream into messages (4-byte header each).

    Each message keeps its NBSS header, matching the framing our SMB
    model emits.  A trailing partial message (stream cut mid-capture)
    is dropped.
    """
    return [data for _, data in split_nbss_messages_at(stream)]


def split_nbss_messages_at(stream: bytes) -> list[tuple[int, bytes]]:
    """NBSS messages with their byte offsets into *stream*.

    The offset is what lets reassembled messages recover the timestamp
    of the TCP segment that carried their first byte.
    """
    messages: list[tuple[int, bytes]] = []
    offset = 0
    while offset + 4 <= len(stream):
        length = int.from_bytes(stream[offset + 1 : offset + 4], "big")
        end = offset + 4 + length
        if end > len(stream):
            break
        messages.append((offset, stream[offset:end]))
        offset = end
    return messages


def trace_from_tcp_capture(
    frames: list[tuple[float, bytes]],
    protocol: str = "smb",
    port: int = 445,
) -> Trace:
    """Full path: raw frames -> reassembled NBSS messages -> Trace.

    Messages are stamped with the capture time of the segment carrying
    their first byte, so sorting by timestamp reproduces the observed
    request/response interleaving across the two flow directions.
    """
    streams = reassemble_streams(frames)
    messages: list[TraceMessage] = []
    for key, buffer in streams.items():
        if port not in (key.src_port, key.dst_port):
            continue
        direction = "request" if key.dst_port == port else "response"
        for offset, data in split_nbss_messages_at(buffer.assemble()):
            messages.append(
                TraceMessage(
                    data=data,
                    timestamp=buffer.timestamp_at(offset),
                    src_ip=key.src_ip,
                    dst_ip=key.dst_ip,
                    src_port=key.src_port,
                    dst_port=key.dst_port,
                    direction=direction,
                )
            )
    messages.sort(key=lambda m: m.timestamp)
    return Trace(messages=messages, protocol=protocol)
