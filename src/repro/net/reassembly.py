"""TCP stream reassembly and NBSS message splitting.

Real SMB captures arrive as TCP segments, not application messages.
This module rebuilds per-direction byte streams from captured segments
(ordering by sequence number, dropping retransmitted overlap) and
splits NBSS-framed streams (SMB's 4-byte length framing) back into the
application messages the inference pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.packet import IPPROTO_TCP, EthernetFrame, IPv4Packet, TcpSegment
from repro.net.trace import Trace, TraceMessage


@dataclass(frozen=True)
class FlowKey:
    """One direction of a TCP conversation."""

    src_ip: bytes
    dst_ip: bytes
    src_port: int
    dst_port: int


@dataclass
class StreamBuffer:
    """Sequence-ordered reassembly buffer for one flow direction."""

    base_seq: int | None = None
    chunks: dict[int, bytes] = field(default_factory=dict)  # seq -> payload
    first_timestamp: float = 0.0

    def add(self, seq: int, payload: bytes, timestamp: float) -> None:
        if not payload:
            return
        if self.base_seq is None:
            self.base_seq = seq
            self.first_timestamp = timestamp
        existing = self.chunks.get(seq)
        if existing is None or len(payload) > len(existing):
            self.chunks[seq] = payload

    def assemble(self) -> bytes:
        """Contiguous stream bytes from the base sequence onward.

        Overlapping retransmissions are dominated by the longest chunk at
        each offset; a gap (lost segment not captured) truncates the
        stream at the gap, which is the safe behaviour for inference.
        """
        if self.base_seq is None:
            return b""
        out = bytearray()
        expected = self.base_seq
        for seq in sorted(self.chunks):
            payload = self.chunks[seq]
            if seq > expected:
                break  # gap: stop rather than fabricate bytes
            skip = expected - seq
            if skip < len(payload):
                out += payload[skip:]
                expected = seq + len(payload)
        return bytes(out)


def reassemble_streams(
    frames: list[tuple[float, bytes]],
) -> dict[FlowKey, StreamBuffer]:
    """Group raw Ethernet frames into per-direction TCP stream buffers."""
    streams: dict[FlowKey, StreamBuffer] = {}
    for timestamp, raw in frames:
        try:
            frame = EthernetFrame.parse(raw)
            ip = IPv4Packet.parse(frame.payload)
            if ip.protocol != IPPROTO_TCP:
                continue
            tcp = TcpSegment.parse(ip.payload)
        except ValueError:
            continue
        key = FlowKey(
            src_ip=ip.src, dst_ip=ip.dst, src_port=tcp.src_port, dst_port=tcp.dst_port
        )
        streams.setdefault(key, StreamBuffer()).add(tcp.seq, tcp.payload, timestamp)
    return streams


def split_nbss_messages(stream: bytes) -> list[bytes]:
    """Split an NBSS-framed stream into messages (4-byte header each).

    Each message keeps its NBSS header, matching the framing our SMB
    model emits.  A trailing partial message (stream cut mid-capture)
    is dropped.
    """
    messages = []
    offset = 0
    while offset + 4 <= len(stream):
        length = int.from_bytes(stream[offset + 1 : offset + 4], "big")
        end = offset + 4 + length
        if end > len(stream):
            break
        messages.append(stream[offset:end])
        offset = end
    return messages


def trace_from_tcp_capture(
    frames: list[tuple[float, bytes]],
    protocol: str = "smb",
    port: int = 445,
) -> Trace:
    """Full path: raw frames -> reassembled NBSS messages -> Trace."""
    streams = reassemble_streams(frames)
    messages: list[TraceMessage] = []
    for key, buffer in streams.items():
        if port not in (key.src_port, key.dst_port):
            continue
        direction = "request" if key.dst_port == port else "response"
        for data in split_nbss_messages(buffer.assemble()):
            messages.append(
                TraceMessage(
                    data=data,
                    timestamp=buffer.first_timestamp,
                    src_ip=key.src_ip,
                    dst_ip=key.dst_ip,
                    src_port=key.src_port,
                    dst_port=key.dst_port,
                    direction=direction,
                )
            )
    messages.sort(key=lambda m: m.timestamp)
    return Trace(messages=messages, protocol=protocol)
