"""Message type identification via continuous segment similarity.

The paper repurposes the Canberra dissimilarity it takes from the
authors' NEMETYL system (Kleber et al., INFOCOM 2020), whose original
job was clustering whole *messages* into message types.  This package
implements that substrate: messages are compared by aligning their
segment sequences under the Canberra dissimilarity ("continuous segment
similarity"), and the resulting message dissimilarity matrix is
clustered with the same auto-configured DBSCAN machinery as field type
clustering.

The paper's Section II explicitly leaves message-type inference to this
prior work; having it in-repo completes the analysis workflow: first
split a trace into message types, then cluster field data types within
or across them.
"""

from repro.msgtypes.clustering import (
    MessageTypeClusterer,
    MessageTypeResult,
    cluster_message_types,
)
from repro.msgtypes.similarity import (
    alignment_dissimilarities,
    indexed_sequences,
    message_dissimilarity_matrix,
    segment_sequences,
)

__all__ = [
    "MessageTypeClusterer",
    "MessageTypeResult",
    "alignment_dissimilarities",
    "cluster_message_types",
    "indexed_sequences",
    "message_dissimilarity_matrix",
    "segment_sequences",
]
