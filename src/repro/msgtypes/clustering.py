"""Clustering messages into message types (NEMETYL substrate).

Reuses the field-type machinery: the message dissimilarity matrix feeds
the same k-NN-ECDF epsilon auto-configuration and DBSCAN.  The result
groups trace messages into inferred message types, which downstream
analyses (per-type format inference, state machines) build on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.dbscan import DbscanResult, dbscan
from repro.core.ecdf import Ecdf
from repro.core.kneedle import detect_knees, smooth_ecdf
from repro.core.segments import Segment
from repro.msgtypes.similarity import message_dissimilarity_matrix
from repro.net.trace import Trace
from repro.segmenters.base import Segmenter


@dataclass
class MessageTypeResult:
    """Inferred message types for one trace."""

    trace: Trace
    distances: np.ndarray
    epsilon: float
    min_samples: int
    dbscan_result: DbscanResult

    @property
    def labels(self) -> np.ndarray:
        return self.dbscan_result.labels

    @property
    def type_count(self) -> int:
        return self.dbscan_result.cluster_count

    def members(self, message_type: int) -> list[int]:
        return self.dbscan_result.members(message_type).tolist()

    def assignments(self) -> list[tuple[int, int]]:
        """(message_index, type_label) pairs; -1 labels noise."""
        return [(i, int(label)) for i, label in enumerate(self.labels)]


class MessageTypeClusterer:
    """Cluster whole messages by continuous segment similarity."""

    def __init__(
        self,
        segmenter: Segmenter,
        gap_penalty: float = 0.8,
        sensitivity: float = 1.0,
    ):
        self.segmenter = segmenter
        self.gap_penalty = gap_penalty
        self.sensitivity = sensitivity

    def cluster(self, trace: Trace) -> MessageTypeResult:
        """Segment the trace, align segment sequences, cluster messages."""
        segments: list[Segment] = self.segmenter.segment(trace)
        distances = message_dissimilarity_matrix(
            segments, len(trace), gap_penalty=self.gap_penalty
        )
        epsilon, min_samples = self._configure(distances)
        result = dbscan(distances, epsilon, min_samples)
        return MessageTypeResult(
            trace=trace,
            distances=distances,
            epsilon=epsilon,
            min_samples=min_samples,
            dbscan_result=result,
        )

    def _configure(self, distances: np.ndarray) -> tuple[float, int]:
        count = distances.shape[0]
        min_samples = max(2, round(math.log(count))) if count > 1 else 1
        if count < 4:
            return float(distances.max() if count > 1 else 0.0), min_samples
        # k-NN distance ECDF knee, like the field-type auto-configuration
        # but over message distances.
        ordered = np.sort(distances, axis=1)
        k = min(2, count - 1)
        ecdf = Ecdf.from_samples(ordered[:, k])
        x, y = smooth_ecdf(ecdf)
        knees = detect_knees(x, y, sensitivity=self.sensitivity)
        if knees and knees[-1].x > 0:
            return float(knees[-1].x), min_samples
        return float(np.median(ecdf.samples)), min_samples
