"""Clustering messages into message types (NEMETYL substrate).

Reuses the field-type machinery: the message dissimilarity matrix feeds
the same k-NN-ECDF epsilon auto-configuration (Algorithm 1) and DBSCAN.
The result groups trace messages into inferred message types, which
downstream analyses (per-type format inference, state machines) build
on.

:func:`cluster_message_types` is the pipeline stage: it scores the
per-message segment sequences against an *existing* unique-segment
dissimilarity matrix — the field-type pipeline's own — so the batch
``analyze()`` path, a prebuilt-matrix ``cluster_matrix()`` path, and
the incremental session all derive identical message-type labels from
identical field-type state.  :class:`MessageTypeClusterer` is the
standalone convenience wrapper that segments a trace and builds the
matrix itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.autoconf import configure
from repro.core.dbscan import DbscanResult, dbscan
from repro.core.kneedle import DEFAULT_SENSITIVITY
from repro.core.matrix import DissimilarityMatrix
from repro.core.segments import Segment, unique_segments
from repro.msgtypes.similarity import (
    GAP_PENALTY,
    alignment_dissimilarities,
    indexed_sequences,
)
from repro.net.trace import Trace
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.segmenters.base import Segmenter

RUNS_METRIC = "repro_msgtypes_runs_total"
_RUNS_HELP = "Completed message-type clustering stage runs."
CLUSTERS_METRIC = "repro_msgtypes_clusters"
_CLUSTERS_HELP = "Inferred message types in the last run."
NOISE_METRIC = "repro_msgtypes_noise_messages"
_NOISE_HELP = "Messages left unassigned (noise) in the last run."
SIMILARITY_SECONDS_METRIC = "repro_msgtypes_similarity_seconds"
_SIMILARITY_HELP = "Wall-clock seconds building the message similarity matrix."


@dataclass
class MessageTypeResult:
    """Inferred message types for one trace.

    ``trace`` is None when the stage ran from segments + matrix alone
    (the pipeline integration); the standalone
    :class:`MessageTypeClusterer` always attaches the trace it
    segmented.
    """

    trace: Trace | None
    distances: np.ndarray
    epsilon: float
    min_samples: int
    dbscan_result: DbscanResult

    @property
    def labels(self) -> np.ndarray:
        """Per-message type labels (-1 = noise)."""
        return self.dbscan_result.labels

    @property
    def type_count(self) -> int:
        """Number of inferred message types."""
        return self.dbscan_result.cluster_count

    @property
    def noise_count(self) -> int:
        """Messages assigned to no type."""
        return len(self.dbscan_result.noise)

    def members(self, message_type: int) -> list[int]:
        """Message indices belonging to *message_type*."""
        return self.dbscan_result.members(message_type).tolist()

    def assignments(self) -> list[tuple[int, int]]:
        """(message_index, type_label) pairs; -1 labels noise."""
        return [(i, int(label)) for i, label in enumerate(self.labels)]

    def sizes(self) -> list[int]:
        """Member count per message type, largest first."""
        return sorted(
            (len(self.dbscan_result.members(t)) for t in range(self.type_count)),
            reverse=True,
        )


def cluster_message_types(
    segments: list[Segment],
    message_count: int,
    *,
    matrix: DissimilarityMatrix | None = None,
    trace: Trace | None = None,
    gap_penalty: float = GAP_PENALTY,
    sensitivity: float = DEFAULT_SENSITIVITY,
    smoothness: float | None = None,
    min_segment_length: int = 2,
) -> MessageTypeResult:
    """Cluster *message_count* messages by continuous segment similarity.

    *matrix* is the unique-segment dissimilarity matrix the alignment
    scores segment pairs against; pass the field-type pipeline's
    ``result.matrix`` to type messages from the exact state the field
    stage computed (built from scratch when None).  Runs inside
    ``msgtypes.similarity`` and ``msgtypes.cluster`` spans and reports
    ``repro_msgtypes_*`` metrics.
    """
    tracer = get_tracer()
    with tracer.span(
        "msgtypes.similarity", messages=message_count, segments=len(segments)
    ) as similarity_span:
        started = time.perf_counter()
        if matrix is None:
            uniques = unique_segments(segments, min_length=min_segment_length)
            matrix = DissimilarityMatrix.build(uniques)
        index_of = {u.data: i for i, u in enumerate(matrix.segments)}
        indexed = indexed_sequences(segments, message_count, index_of)
        distances = alignment_dissimilarities(
            indexed, matrix.values, gap_penalty
        )
        elapsed = time.perf_counter() - started
        similarity_span.set(unique_segments=len(matrix))
    with tracer.span("msgtypes.cluster", messages=message_count) as cluster_span:
        # Algorithm 1 over the message distances: the message matrix is
        # wrapped as a DissimilarityMatrix (configure only reads counts,
        # values and k-NN columns, never the segment objects).
        auto = configure(
            DissimilarityMatrix(segments=[None] * message_count, values=distances),
            sensitivity=sensitivity,
            smoothness=smoothness,
        )
        result = dbscan(distances, auto.epsilon, auto.min_samples)
        cluster_span.set(
            epsilon=auto.epsilon,
            min_samples=auto.min_samples,
            types=result.cluster_count,
            noise=len(result.noise),
        )
    metrics = get_metrics()
    metrics.counter(RUNS_METRIC, help=_RUNS_HELP).inc()
    metrics.gauge(CLUSTERS_METRIC, help=_CLUSTERS_HELP).set(result.cluster_count)
    metrics.gauge(NOISE_METRIC, help=_NOISE_HELP).set(len(result.noise))
    metrics.histogram(SIMILARITY_SECONDS_METRIC, help=_SIMILARITY_HELP).observe(
        elapsed
    )
    return MessageTypeResult(
        trace=trace,
        distances=distances,
        epsilon=auto.epsilon,
        min_samples=auto.min_samples,
        dbscan_result=result,
    )


class MessageTypeClusterer:
    """Cluster whole messages by continuous segment similarity."""

    def __init__(
        self,
        segmenter: Segmenter,
        gap_penalty: float = GAP_PENALTY,
        sensitivity: float = DEFAULT_SENSITIVITY,
    ):
        self.segmenter = segmenter
        self.gap_penalty = gap_penalty
        self.sensitivity = sensitivity

    def cluster(self, trace: Trace) -> MessageTypeResult:
        """Segment the trace, align segment sequences, cluster messages."""
        segments: list[Segment] = self.segmenter.segment(trace)
        return cluster_message_types(
            segments,
            len(trace),
            trace=trace,
            gap_penalty=self.gap_penalty,
            sensitivity=self.sensitivity,
        )
