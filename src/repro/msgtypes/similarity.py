"""Continuous segment similarity between messages (NEMETYL's core idea).

Two messages are similar when their *segment sequences* align well:
matching positions contribute the Canberra similarity of the aligned
segments, gaps are penalized.  The pairwise segment dissimilarities are
precomputed once over unique segment values (vectorized), so the
alignment DP only performs table lookups.

The module exposes two layers: :func:`indexed_sequences` /
:func:`alignment_dissimilarities` work from an existing unique-segment
dissimilarity matrix — the message-type stage feeds them the field-type
pipeline's own matrix, which is what makes batch / prebuilt-matrix /
incremental-session message typing produce identical labels — while
:func:`message_dissimilarity_matrix` is the standalone convenience that
builds its matrix from scratch.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import DissimilarityMatrix
from repro.core.segments import Segment, unique_segments

GAP_PENALTY = 0.8


def segment_sequences(segments: list[Segment], message_count: int) -> list[list[Segment]]:
    """Group a flat segment list into ordered per-message sequences."""
    sequences: list[list[Segment]] = [[] for _ in range(message_count)]
    for segment in segments:
        sequences[segment.message_index].append(segment)
    for sequence in sequences:
        sequence.sort(key=lambda s: s.offset)
    return sequences


def indexed_sequences(
    segments: list[Segment],
    message_count: int,
    index_of: dict[bytes, int],
) -> list[list[int]]:
    """Per-message sequences of unique-segment indices.

    *index_of* maps segment values to their row in the unique-segment
    dissimilarity matrix; values absent from the table (segments
    excluded from clustering, e.g. 1-byte segments) become index -1,
    which the alignment matches with score 0.
    """
    return [
        [index_of.get(s.data, -1) for s in sequence]
        for sequence in segment_sequences(segments, message_count)
    ]


def _align_score(
    a: list[int], b: list[int], distances: np.ndarray, gap_penalty: float
) -> float:
    """Needleman–Wunsch similarity score of two index sequences.

    Match score is ``1 - d`` for the aligned segments' dissimilarity;
    gaps cost ``-gap_penalty``.  Index -1 denotes a segment excluded
    from the distance table (1-byte segments), matched with score 0.
    """
    m, n = len(a), len(b)
    previous = -gap_penalty * np.arange(n + 1)
    for i in range(1, m + 1):
        current = np.empty(n + 1)
        current[0] = -gap_penalty * i
        ai = a[i - 1]
        if ai >= 0:
            b_arr = np.array(b, dtype=np.int64)
            valid = b_arr >= 0
            match_scores = np.zeros(n)
            match_scores[valid] = 1.0 - distances[ai, b_arr[valid]]
        else:
            match_scores = np.zeros(n)
        diagonal = previous[:-1] + match_scores
        up = previous[1:] - gap_penalty
        best = np.maximum(diagonal, up)
        # Left dependency is sequential.
        running = current[0]
        for j in range(1, n + 1):
            running = max(best[j - 1], running - gap_penalty)
            current[j] = running
        previous = current
    return float(previous[-1])


def alignment_dissimilarities(
    indexed: list[list[int]],
    distances: np.ndarray,
    gap_penalty: float = GAP_PENALTY,
) -> np.ndarray:
    """Pairwise message dissimilarities in [0, 1] from index sequences.

    The alignment similarity is normalized by the self-alignment scores:
    ``d(A, B) = 1 - score(A, B) / max(score(A, A), score(B, B))``,
    clipped to [0, 1].  Empty sequences are maximally dissimilar to
    everything (1.0).
    """
    message_count = len(indexed)
    self_scores = np.array(
        [
            _align_score(seq, seq, distances, gap_penalty) if seq else 0.0
            for seq in indexed
        ]
    )
    out = np.zeros((message_count, message_count), dtype=np.float64)
    for i in range(message_count):
        for j in range(i + 1, message_count):
            if not indexed[i] or not indexed[j]:
                out[i, j] = out[j, i] = 1.0
                continue
            score = _align_score(indexed[i], indexed[j], distances, gap_penalty)
            norm = max(self_scores[i], self_scores[j])
            dissimilarity = 1.0 - score / norm if norm > 0 else 1.0
            out[i, j] = out[j, i] = float(np.clip(dissimilarity, 0.0, 1.0))
    return out


def message_dissimilarity_matrix(
    segments: list[Segment],
    message_count: int,
    gap_penalty: float = GAP_PENALTY,
    min_segment_length: int = 2,
) -> np.ndarray:
    """Pairwise message dissimilarities in [0, 1], matrix built in place.

    Builds the unique-segment dissimilarity matrix from *segments* and
    delegates to :func:`alignment_dissimilarities`; callers that already
    own a matrix (the message-type stage reuses the field pipeline's)
    call the two lower-level helpers directly.
    """
    uniques = unique_segments(segments, min_length=min_segment_length)
    matrix = DissimilarityMatrix.build(uniques)
    index_of = {u.data: i for i, u in enumerate(matrix.segments)}
    indexed = indexed_sequences(segments, message_count, index_of)
    return alignment_dissimilarities(indexed, matrix.values, gap_penalty)
