"""Analyst-facing CLI: ``python -m repro <command>``.

Commands:

- ``analyze``  — run the full pipeline on a pcap (or a built-in traffic
  model) and print/save an :class:`~repro.report.AnalysisReport`.
- ``generate`` — synthesize a trace with one of the bundled protocol
  models and write it as a pcap for use with external tooling.
- ``protocols`` — list the bundled protocol models.

The commands are thin wrappers over :mod:`repro.api`; anything the CLI
can do, ``from repro import analyze`` can do without it.  For
convenience, flags may be passed without the ``analyze`` verb
(``repro-analyze --model ntp -n 200``) — analysis is the default
command.

Examples::

    python -m repro generate ntp -n 1000 -o /tmp/ntp.pcap
    python -m repro analyze /tmp/ntp.pcap --port 123 --segmenter nemesys
    python -m repro analyze --model awdl -n 500 --semantics --json report.json
    python -m repro analyze --model ntp --trace-out run.json --metrics-out run.prom
"""

from __future__ import annotations

import argparse
import sys

from repro import api
from repro.cliopts import backend_parent, emit_observability
from repro.core.pipeline import ClusteringConfig
from repro.errors import IngestError
from repro.net.packet import build_udp_ipv4_frame
from repro.net.pcap import LINKTYPE_USER0, PcapPacket, write_pcap
from repro.net.trace import load_trace
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.tracer import Tracer
from repro.protocols import available_protocols, get_model
from repro.segmenters import (
    SegmenterResourceError,
    available_refinements,
    available_segmenters,
)


def _cmd_protocols(_args) -> int:
    for name in available_protocols():
        model = get_model(name)
        context = "IP" if model.has_ip_context else "no IP context"
        print(f"{name:6s} ({context})")
    return 0


def _cmd_generate(args) -> int:
    model = get_model(args.protocol)
    trace = model.generate(args.count, seed=args.seed)
    packets = []
    for message in trace:
        if message.src_ip is not None:
            frame = build_udp_ipv4_frame(
                message.data,
                src_ip=message.src_ip,
                dst_ip=message.dst_ip,
                src_port=message.src_port,
                dst_port=message.dst_port,
            )
            linktype = 1
        else:
            frame = message.data
            linktype = LINKTYPE_USER0
        packets.append(PcapPacket(timestamp=message.timestamp, data=frame))
    written = write_pcap(args.output, packets, linktype=linktype)
    print(f"wrote {written} packets to {args.output}")
    return 0


def _cmd_analyze(args) -> int:
    tracer = Tracer()
    metrics = MetricsRegistry()
    if args.model:
        model = get_model(args.model)
        trace = model.generate(args.count, seed=args.seed)
        trace.protocol = args.model
    elif args.capture:
        try:
            with use_metrics(metrics):
                trace = load_trace(
                    args.capture,
                    protocol=args.name,
                    port=args.port,
                    strict=not args.lenient,
                )
        except IngestError as error:
            print(f"error: malformed capture: {error}", file=sys.stderr)
            if not args.lenient:
                print(
                    "hint: --lenient salvages records before the corruption",
                    file=sys.stderr,
                )
            return 1
        if trace.quarantine:
            print(f"quarantine: {trace.quarantine.summary()}", file=sys.stderr)
    else:
        print("error: provide a capture file or --model", file=sys.stderr)
        return 2
    config = ClusteringConfig.from_args(args)
    try:
        run = api.run_analysis(
            trace,
            config,
            segmenter=args.segmenter,
            semantics=args.semantics,
            msgtypes=args.msgtypes,
            statemachine=args.statemachine,
            tracer=tracer,
            metrics=metrics,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except SegmenterResourceError as error:
        print(f"error: segmenter failed: {error}", file=sys.stderr)
        return 1
    report = run.report
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"report written to {args.json}")
    if args.svg:
        from repro.viz import save_svg

        save_svg(run.result, args.svg, title=f"{run.trace.protocol}: pseudo data types")
        print(f"cluster map written to {args.svg}")
    if args.sm_dot or args.sm_json:
        if run.statemachine is None:
            print("error: --sm-dot/--sm-json require --statemachine", file=sys.stderr)
            return 2
        from repro.statemachine import to_dot, to_json

        if args.sm_dot:
            with open(args.sm_dot, "w") as handle:
                handle.write(to_dot(run.statemachine.machine))
            print(f"state machine written to {args.sm_dot}")
        if args.sm_json:
            with open(args.sm_json, "w") as handle:
                handle.write(to_json(run.statemachine.machine))
            print(f"state machine written to {args.sm_json}")
    emit_observability(
        args,
        tracer,
        metrics,
        config,
        meta={"command": "analyze", "protocol": run.trace.protocol},
    )
    print(report.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Field data type clustering for unknown binary protocols",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    protocols = sub.add_parser("protocols", help="list bundled protocol models")
    protocols.set_defaults(handler=_cmd_protocols)

    generate = sub.add_parser("generate", help="synthesize a trace as pcap")
    generate.add_argument("protocol", choices=available_protocols())
    generate.add_argument("-n", "--count", type=int, default=1000)
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--seed", type=int, default=42)
    generate.set_defaults(handler=_cmd_generate)

    analyze = sub.add_parser(
        "analyze",
        help="cluster field data types",
        parents=[backend_parent()],
    )
    analyze.add_argument("capture", nargs="?", help="pcap/pcapng file")
    analyze.add_argument("--model", choices=available_protocols(),
                         help="analyze a synthesized trace instead of a capture")
    analyze.add_argument("-n", "--count", type=int, default=500,
                         help="messages to synthesize with --model")
    analyze.add_argument("--name", default="unknown", help="protocol label")
    analyze.add_argument("--port", type=int, help="UDP/TCP port filter")
    analyze.add_argument("--segmenter", choices=available_segmenters(),
                         default="nemesys")
    analyze.add_argument("--refinement", choices=available_refinements(),
                         default="none",
                         help="boundary-refinement pass composed with the "
                              "segmenter (pca = per-cluster PCA)")
    analyze.add_argument("--semantics", action="store_true",
                         help="run semantic deduction on the clusters")
    analyze.add_argument("--msgtypes", action="store_true",
                         help="also cluster messages into message types")
    analyze.add_argument("--statemachine", action="store_true",
                         help="infer a protocol state machine over "
                              "per-session message-type sequences "
                              "(implies --msgtypes)")
    analyze.add_argument("--sm-dot", metavar="PATH",
                         help="write the inferred state machine as DOT")
    analyze.add_argument("--sm-json", metavar="PATH",
                         help="write the inferred state machine as JSON")
    analyze.add_argument("--json", help="also write the report as JSON")
    analyze.add_argument("--svg", help="write an MDS cluster map as SVG")
    analyze.add_argument("--seed", type=int, default=42)
    analyze.set_defaults(handler=_cmd_analyze)

    from repro.serve import build_parser as serve_parser

    serve = sub.add_parser(
        "serve",
        help="serve an incremental analysis session over TCP",
        parents=[serve_parser()],
        add_help=False,
    )
    serve.set_defaults(handler=_cmd_serve)
    return parser


def _cmd_serve(args) -> int:
    from repro.serve import run_server

    return run_server(args)


_COMMANDS = ("protocols", "generate", "analyze", "serve")


def _default_to_analyze(argv: list[str]) -> list[str]:
    """Insert the ``analyze`` verb when flags are passed without one."""
    if not argv or argv[0] in _COMMANDS or argv[0] in ("-h", "--help"):
        return argv
    return ["analyze", *argv]


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(_default_to_analyze(list(argv)))
    try:
        return args.handler(args)
    except BrokenPipeError:  # output piped into head/less that closed early
        return 0


if __name__ == "__main__":
    sys.exit(main())
