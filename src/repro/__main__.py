"""Analyst-facing CLI: ``python -m repro <command>``.

Commands:

- ``analyze``  — run the full pipeline on a pcap (or a built-in traffic
  model) and print/save an :class:`~repro.report.AnalysisReport`.
- ``generate`` — synthesize a trace with one of the bundled protocol
  models and write it as a pcap for use with external tooling.
- ``protocols`` — list the bundled protocol models.

Examples::

    python -m repro generate ntp -n 1000 -o /tmp/ntp.pcap
    python -m repro analyze /tmp/ntp.pcap --port 123 --segmenter nemesys
    python -m repro analyze --model awdl -n 500 --semantics --json report.json
"""

from __future__ import annotations

import argparse
import sys

from repro.core.matrix import MatrixBuildOptions, set_default_build_options
from repro.core.matrixcache import cache_counters
from repro.core.pipeline import ClusteringConfig, FieldTypeClusterer
from repro.net.packet import build_udp_ipv4_frame
from repro.net.pcap import LINKTYPE_USER0, PcapPacket, write_pcap
from repro.net.trace import load_trace
from repro.protocols import available_protocols, get_model
from repro.report import AnalysisReport
from repro.segmenters import (
    CspSegmenter,
    NemesysSegmenter,
    NetzobSegmenter,
    SegmenterResourceError,
)
from repro.semantics import deduce_semantics

_SEGMENTERS = {
    "nemesys": NemesysSegmenter,
    "netzob": NetzobSegmenter,
    "csp": CspSegmenter,
}


def _cmd_protocols(_args) -> int:
    for name in available_protocols():
        model = get_model(name)
        context = "IP" if model.has_ip_context else "no IP context"
        print(f"{name:6s} ({context})")
    return 0


def _cmd_generate(args) -> int:
    model = get_model(args.protocol)
    trace = model.generate(args.count, seed=args.seed)
    packets = []
    for message in trace:
        if message.src_ip is not None:
            frame = build_udp_ipv4_frame(
                message.data,
                src_ip=message.src_ip,
                dst_ip=message.dst_ip,
                src_port=message.src_port,
                dst_port=message.dst_port,
            )
            linktype = 1
        else:
            frame = message.data
            linktype = LINKTYPE_USER0
        packets.append(PcapPacket(timestamp=message.timestamp, data=frame))
    written = write_pcap(args.output, packets, linktype=linktype)
    print(f"wrote {written} packets to {args.output}")
    return 0


def _cmd_analyze(args) -> int:
    if args.model:
        model = get_model(args.model)
        trace = model.generate(args.count, seed=args.seed)
        trace.protocol = args.model
    elif args.capture:
        trace = load_trace(args.capture, protocol=args.name, port=args.port)
    else:
        print("error: provide a capture file or --model", file=sys.stderr)
        return 2
    trace = trace.preprocess()
    if not len(trace):
        print("error: no messages after preprocessing", file=sys.stderr)
        return 1
    segmenter = _SEGMENTERS[args.segmenter]()
    try:
        segments = segmenter.segment(trace)
    except SegmenterResourceError as error:
        print(f"error: segmenter failed: {error}", file=sys.stderr)
        return 1
    matrix_options = matrix_options_from_args(args)
    set_default_build_options(matrix_options)
    config = ClusteringConfig(matrix_options=matrix_options)
    result = FieldTypeClusterer(config).cluster(segments)
    if args.timings:
        _print_timings(result)
    semantics = deduce_semantics(result, trace) if args.semantics else None
    report = AnalysisReport.build(result, trace, semantics)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"report written to {args.json}")
    if args.svg:
        from repro.viz import save_svg

        save_svg(result, args.svg, title=f"{trace.protocol}: pseudo data types")
        print(f"cluster map written to {args.svg}")
    print(report.render())
    return 0


def matrix_options_from_args(args) -> MatrixBuildOptions:
    """Translate the shared matrix-backend CLI flags into options."""
    return MatrixBuildOptions(
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )


def add_matrix_backend_flags(parser: argparse.ArgumentParser) -> None:
    """The matrix execution/caching flags shared by repro-analyze and repro-eval."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="dissimilarity-matrix worker processes (default: all CPU cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk dissimilarity-matrix cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="matrix cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )


def _print_timings(result) -> None:
    """Per-stage wall clock + matrix cache effectiveness, to stderr."""
    stages = " ".join(
        f"{name}={1e3 * value:.1f}ms" for name, value in result.timings.items()
    )
    print(f"timings: {stages}", file=sys.stderr)
    stats = result.matrix.stats
    if stats is not None:
        counters = cache_counters()
        print(
            f"matrix: backend={stats.backend} workers={stats.workers} "
            f"cache_hits={counters['hits']} cache_misses={counters['misses']}",
            file=sys.stderr,
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Field data type clustering for unknown binary protocols",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    protocols = sub.add_parser("protocols", help="list bundled protocol models")
    protocols.set_defaults(handler=_cmd_protocols)

    generate = sub.add_parser("generate", help="synthesize a trace as pcap")
    generate.add_argument("protocol", choices=available_protocols())
    generate.add_argument("-n", "--count", type=int, default=1000)
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--seed", type=int, default=42)
    generate.set_defaults(handler=_cmd_generate)

    analyze = sub.add_parser("analyze", help="cluster field data types")
    analyze.add_argument("capture", nargs="?", help="pcap/pcapng file")
    analyze.add_argument("--model", choices=available_protocols(),
                         help="analyze a synthesized trace instead of a capture")
    analyze.add_argument("-n", "--count", type=int, default=500,
                         help="messages to synthesize with --model")
    analyze.add_argument("--name", default="unknown", help="protocol label")
    analyze.add_argument("--port", type=int, help="UDP/TCP port filter")
    analyze.add_argument("--segmenter", choices=sorted(_SEGMENTERS), default="nemesys")
    analyze.add_argument("--semantics", action="store_true",
                         help="run semantic deduction on the clusters")
    analyze.add_argument("--json", help="also write the report as JSON")
    analyze.add_argument("--svg", help="write an MDS cluster map as SVG")
    analyze.add_argument("--seed", type=int, default=42)
    analyze.add_argument("--timings", action="store_true",
                         help="print per-stage timings and cache counters to stderr")
    add_matrix_backend_flags(analyze)
    analyze.set_defaults(handler=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:  # output piped into head/less that closed early
        return 0


if __name__ == "__main__":
    sys.exit(main())
