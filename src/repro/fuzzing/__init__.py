"""Value-generation models and smart fuzzing (paper future work).

The paper's conclusion proposes "automatically learn[ing] value
generation rules from the cluster contents ... to predict probable
field values for fuzzing and misbehavior detection".  This package
implements that idea with transparent statistical models instead of an
LSTM (which the offline environment cannot train and the cluster sizes
would not support anyway):

- :class:`~repro.fuzzing.valuemodel.ClusterValueModel` learns a
  per-cluster generator — byte-column distributions for fixed-width
  value domains, an order-1 Markov chain with a length model for
  variable-width ones — supporting sampling *and* likelihood scoring
  (the misbehavior-detection half of the proposal).
- :class:`~repro.fuzzing.mutator.MessageFuzzer` combines the clustering,
  the semantic labels, and the value models into a message-level fuzz
  case generator with per-domain mutation strategies.
"""

from repro.fuzzing.mutator import FuzzCase, MessageFuzzer, MutationStrategy
from repro.fuzzing.valuemodel import (
    ByteColumnModel,
    ClusterValueModel,
    MarkovValueModel,
)

__all__ = [
    "ByteColumnModel",
    "ClusterValueModel",
    "FuzzCase",
    "MarkovValueModel",
    "MessageFuzzer",
    "MutationStrategy",
]
