"""Message-level smart fuzzing driven by pseudo data types.

The fuzzer ties together the three analysis layers this library
produces for an unknown protocol:

1. the segmentation (where fields are),
2. the clustering (which fields share a value domain),
3. the semantics (what the domain probably means),

and derives a per-domain mutation strategy.  Compared with blind
bit-flipping this concentrates mutations where they can change protocol
behaviour (identifiers, counters, lengths) and avoids wasting cases on
bytes that only gate parsing (magic constants).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.core.pipeline import ClusteringResult
from repro.core.segments import Segment
from repro.fuzzing.valuemodel import ClusterValueModel
from repro.net.trace import Trace
from repro.semantics.engine import ClusterSemantics


class MutationStrategy(Enum):
    """How a value domain should be mutated."""

    KEEP = "keep"  # constants / magic: mutating only breaks parsing
    ENUMERATE = "enumerate"  # enums: walk observed + unseen neighbor codes
    ARITHMETIC = "arithmetic"  # counters/lengths: off-by-one, extremes
    RESAMPLE = "resample"  # ids/nonces: draw from the learned model
    GENERATE = "generate"  # text: novel model-generated strings
    BITFLIP = "bitflip"  # unknown domains: classic fallback


#: semantic label -> strategy
STRATEGY_BY_LABEL = {
    "constant": MutationStrategy.KEEP,
    "enum": MutationStrategy.ENUMERATE,
    "counter": MutationStrategy.ARITHMETIC,
    "length-field": MutationStrategy.ARITHMETIC,
    "timestamp": MutationStrategy.ARITHMETIC,
    "random-token": MutationStrategy.RESAMPLE,
    "address": MutationStrategy.RESAMPLE,
    "text": MutationStrategy.GENERATE,
}


@dataclass(frozen=True)
class FuzzCase:
    """One generated fuzz input."""

    data: bytes
    base_message_index: int
    mutated_offset: int
    mutated_length: int
    cluster_id: int
    strategy: MutationStrategy
    description: str


@dataclass
class MessageFuzzer:
    """Generate fuzz cases for one analyzed trace."""

    trace: Trace
    segments: list[Segment]
    result: ClusteringResult
    semantics: list[ClusterSemantics] | None = None
    _models: dict[int, ClusterValueModel] = field(default_factory=dict)
    _label_by_value: dict[bytes, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        labels = self.result.labels()
        for index, unique in enumerate(self.result.segments):
            self._label_by_value[unique.data] = int(labels[index])

    def cluster_of(self, segment: Segment) -> int:
        """Cluster id of a segment's value, -1 when unclustered."""
        return self._label_by_value.get(segment.data, -1)

    def strategy_for(self, cluster_id: int) -> MutationStrategy:
        """Mutation strategy for a cluster, chosen by its semantic label."""
        if cluster_id < 0:
            return MutationStrategy.BITFLIP
        if self.semantics is not None:
            for semantics in self.semantics:
                if semantics.cluster_id == cluster_id:
                    return STRATEGY_BY_LABEL.get(
                        semantics.label, MutationStrategy.BITFLIP
                    )
        return MutationStrategy.RESAMPLE

    def model_for(self, cluster_id: int) -> ClusterValueModel:
        """Value model of one cluster, fitted lazily and cached."""
        if cluster_id not in self._models:
            values = [m.data for m in self.result.cluster_members(cluster_id)]
            self._models[cluster_id] = ClusterValueModel.fit(values)
        return self._models[cluster_id]

    # -- mutation primitives --------------------------------------------------

    def _mutate_value(
        self, value: bytes, cluster_id: int, strategy: MutationStrategy, rng: random.Random
    ) -> tuple[bytes, str]:
        if strategy is MutationStrategy.KEEP:
            return value, "kept constant"
        if strategy is MutationStrategy.ENUMERATE:
            members = [m.data for m in self.result.cluster_members(cluster_id)]
            others = [m for m in members if m != value and len(m) == len(value)]
            if others and rng.random() < 0.7:
                return rng.choice(others), "swapped with observed enum value"
            mutated = bytearray(value)
            mutated[-1] = (mutated[-1] + rng.choice([1, 2, 0x7F])) & 0xFF
            return bytes(mutated), "probed unseen enum code"
        if strategy is MutationStrategy.ARITHMETIC:
            number = int.from_bytes(value, "big")
            limit = (1 << (8 * len(value))) - 1
            choice = rng.choice(["+1", "-1", "zero", "max", "msb"])
            mutated_number = {
                "+1": (number + 1) & limit,
                "-1": (number - 1) & limit,
                "zero": 0,
                "max": limit,
                "msb": number ^ (1 << (8 * len(value) - 1)),
            }[choice]
            return (
                mutated_number.to_bytes(len(value), "big"),
                f"arithmetic mutation ({choice})",
            )
        if strategy is MutationStrategy.RESAMPLE:
            sample = self.model_for(cluster_id).sample(rng)
            if len(sample) != len(value):
                sample = (sample + bytes(len(value)))[: len(value)]
            return sample, "resampled from the cluster value model"
        if strategy is MutationStrategy.GENERATE:
            generated = self.model_for(cluster_id).sample_novel(rng)
            return generated, "generated novel text-like value"
        mutated = bytearray(value)
        position = rng.randrange(len(mutated))
        mutated[position] ^= 1 << rng.randrange(8)
        return bytes(mutated), "bit flip (unclustered fallback)"

    # -- public API ------------------------------------------------------------

    def fuzz_segment(self, segment: Segment, rng: random.Random) -> FuzzCase:
        """Produce one fuzz case mutating exactly this segment."""
        cluster_id = self.cluster_of(segment)
        strategy = self.strategy_for(cluster_id)
        mutated_value, description = self._mutate_value(
            segment.data, cluster_id, strategy, rng
        )
        base = self.trace[segment.message_index].data
        data = base[: segment.offset] + mutated_value + base[segment.end :]
        return FuzzCase(
            data=data,
            base_message_index=segment.message_index,
            mutated_offset=segment.offset,
            mutated_length=len(mutated_value),
            cluster_id=cluster_id,
            strategy=strategy,
            description=description,
        )

    def generate(self, count: int, seed: int = 0) -> list[FuzzCase]:
        """Generate *count* fuzz cases, preferring mutable domains."""
        rng = random.Random(seed)
        mutable = [
            s
            for s in self.segments
            if self.strategy_for(self.cluster_of(s)) is not MutationStrategy.KEEP
        ]
        if not mutable:
            raise ValueError("every segment is a constant; nothing to fuzz")
        cases = []
        for _ in range(count):
            segment = rng.choice(mutable)
            cases.append(self.fuzz_segment(segment, rng))
        return cases

    def detect_misbehavior(self, message: bytes, threshold: float = 8.0) -> list[tuple[int, float]]:
        """Anomaly scores for a new message's known-domain values.

        Splits *message* with the observed segment layout of the closest
        base message (byte-identical when present, else same length) and
        scores each value against its cluster's model.  Returns
        (offset, score) for values above *threshold* — the
        misbehavior-detection application.
        """
        exact = [
            index
            for index, base in enumerate(self.trace)
            if base.data == message
        ]
        if exact:
            wanted = set(exact)
            candidates = [s for s in self.segments if s.message_index in wanted]
        else:
            candidates = [
                s
                for s in self.segments
                if len(self.trace[s.message_index].data) == len(message)
            ]
        flagged = []
        for segment in candidates:
            cluster_id = self.cluster_of(segment)
            if cluster_id < 0:
                continue
            value = message[segment.offset : segment.end]
            if len(value) != segment.length:
                continue
            score = self.model_for(cluster_id).anomaly_score(value)
            if score > threshold:
                flagged.append((segment.offset, score))
        return sorted(set(flagged))
