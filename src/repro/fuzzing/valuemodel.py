"""Statistical value-generation models learned from cluster contents.

Two model families cover the value domains clustering produces:

- :class:`ByteColumnModel` — fixed-width domains (ids, counters,
  addresses, timestamps): an independent byte distribution per column.
  Captures positional structure like "first byte is always 0x0a".
- :class:`MarkovValueModel` — variable-width domains (names, paths):
  an order-1 byte Markov chain plus an empirical length distribution.
  Captures local structure like "letters follow letters".

Both support ``sample`` (generation: fuzzing) and ``log_likelihood``
(scoring: misbehavior detection — an observed value that the model
finds wildly improbable is an anomaly candidate).
"""

from __future__ import annotations

import math
import random
from collections import Counter, defaultdict
from dataclasses import dataclass, field

#: Laplace smoothing mass given to unseen bytes.
SMOOTHING = 0.5


@dataclass
class ByteColumnModel:
    """Independent per-column byte distributions for fixed-width values."""

    width: int
    columns: list[Counter] = field(default_factory=list)
    total: int = 0

    @classmethod
    def fit(cls, values: list[bytes]) -> "ByteColumnModel":
        if not values:
            raise ValueError("cannot fit on an empty value set")
        widths = {len(v) for v in values}
        if len(widths) != 1:
            raise ValueError(f"mixed widths {sorted(widths)}; use MarkovValueModel")
        width = widths.pop()
        columns = [Counter() for _ in range(width)]
        for value in values:
            for position, byte in enumerate(value):
                columns[position][byte] += 1
        return cls(width=width, columns=columns, total=len(values))

    def sample(self, rng: random.Random) -> bytes:
        out = bytearray()
        for column in self.columns:
            bytes_, counts = zip(*column.items())
            out.append(rng.choices(bytes_, weights=counts, k=1)[0])
        return bytes(out)

    def column_probability(self, position: int, byte: int) -> float:
        column = self.columns[position]
        return (column.get(byte, 0) + SMOOTHING) / (self.total + SMOOTHING * 256)

    def log_likelihood(self, value: bytes) -> float:
        """Log-probability of *value*; -inf-ish for wrong widths."""
        if len(value) != self.width:
            return -math.inf
        return sum(
            math.log(self.column_probability(position, byte))
            for position, byte in enumerate(value)
        )


@dataclass
class MarkovValueModel:
    """Order-1 byte Markov chain + length distribution."""

    transitions: dict[int, Counter] = field(default_factory=dict)
    initial: Counter = field(default_factory=Counter)
    lengths: Counter = field(default_factory=Counter)

    @classmethod
    def fit(cls, values: list[bytes]) -> "MarkovValueModel":
        if not values:
            raise ValueError("cannot fit on an empty value set")
        transitions: dict[int, Counter] = defaultdict(Counter)
        initial: Counter = Counter()
        lengths: Counter = Counter()
        for value in values:
            lengths[len(value)] += 1
            if not value:
                continue
            initial[value[0]] += 1
            for current, following in zip(value, value[1:]):
                transitions[current][following] += 1
        return cls(transitions=dict(transitions), initial=initial, lengths=lengths)

    def sample(self, rng: random.Random) -> bytes:
        lengths, weights = zip(*self.lengths.items())
        length = rng.choices(lengths, weights=weights, k=1)[0]
        if length == 0 or not self.initial:
            return b""
        out = bytearray()
        symbols, counts = zip(*self.initial.items())
        out.append(rng.choices(symbols, weights=counts, k=1)[0])
        while len(out) < length:
            column = self.transitions.get(out[-1])
            if not column:
                # Dead end: restart from the initial distribution.
                column = self.initial
            symbols, counts = zip(*column.items())
            out.append(rng.choices(symbols, weights=counts, k=1)[0])
        return bytes(out)

    def _transition_probability(self, current: int, following: int) -> float:
        column = self.transitions.get(current, Counter())
        total = sum(column.values())
        return (column.get(following, 0) + SMOOTHING) / (total + SMOOTHING * 256)

    def log_likelihood(self, value: bytes) -> float:
        total_initial = sum(self.initial.values())
        total_lengths = sum(self.lengths.values())
        score = math.log(
            (self.lengths.get(len(value), 0) + SMOOTHING)
            / (total_lengths + SMOOTHING * 64)
        )
        if not value:
            return score
        score += math.log(
            (self.initial.get(value[0], 0) + SMOOTHING)
            / (total_initial + SMOOTHING * 256)
        )
        for current, following in zip(value, value[1:]):
            score += math.log(self._transition_probability(current, following))
        return score


@dataclass
class ClusterValueModel:
    """Facade: fit the appropriate model family for one cluster."""

    model: ByteColumnModel | MarkovValueModel
    observed: frozenset[bytes]
    #: Minimum log-likelihood over the training values: anomaly scores
    #: measure how far below the *least* plausible observed value a
    #: candidate falls, so every training value scores <= 0 by
    #: construction.
    baseline: float = 0.0

    @classmethod
    def fit(cls, values: list[bytes]) -> "ClusterValueModel":
        if not values:
            raise ValueError("cannot fit on an empty value set")
        widths = {len(v) for v in values}
        model: ByteColumnModel | MarkovValueModel
        if len(widths) == 1:
            model = ByteColumnModel.fit(values)
        else:
            model = MarkovValueModel.fit(values)
        baseline = min(model.log_likelihood(v) for v in values)
        return cls(model=model, observed=frozenset(values), baseline=baseline)

    def sample(self, rng: random.Random) -> bytes:
        return self.model.sample(rng)

    def sample_novel(self, rng: random.Random, attempts: int = 50) -> bytes:
        """A sampled value not observed in the trace, if one is found."""
        for _ in range(attempts):
            value = self.sample(rng)
            if value not in self.observed:
                return value
        return self.sample(rng)

    def log_likelihood(self, value: bytes) -> float:
        return self.model.log_likelihood(value)

    def anomaly_score(self, value: bytes) -> float:
        """Positive score: how much less likely than the least plausible
        observed value.

        Training values score <= 0 by construction; scores above ~5
        (nats) flag values the cluster's generation rule would
        essentially never produce — the misbehavior-detection reading of
        the paper's future work.
        """
        return self.baseline - self.log_likelihood(value)
